//! Per-channel health tracking for the streaming detector.
//!
//! A deployed IDS outlives its sensors: channels drop out, rail, latch,
//! or start emitting NaN mid-print (DESIGN.md §7 catalogues the fault
//! model). The streaming runtime therefore scores every channel each
//! window and demotes misbehaving ones through a three-state machine:
//!
//! ```text
//!             dirty window                dirty streak / NaN-heavy window
//!  Healthy ──────────────────► Degraded ──────────────────► Quarantined
//!     ▲                           │  ▲                           │
//!     └── clean streak ───────────┘  └────── clean streak ───────┘
//! ```
//!
//! A *dirty* window contains non-finite samples or is flat (zero
//! variance — a stuck or dropped-out sensor). **Degraded** channels
//! still feed the comparator (their non-finite samples are replaced by
//! zeros upstream); **Quarantined** channels are excluded from the
//! vertical-distance comparison entirely so one dead sensor cannot mask
//! or mimic an attack on the others. Recovery is hysteretic: a channel
//! must stay clean for [`HealthConfig::recovery_windows`] consecutive
//! windows to climb one state back toward Healthy.

use serde::{Deserialize, Serialize};

/// Health state of one capture channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelState {
    /// Recent windows are finite and non-flat.
    Healthy,
    /// Recent windows show faults; the channel still feeds detection.
    Degraded,
    /// The channel is excluded from the vertical-distance comparator.
    Quarantined,
}

impl std::fmt::Display for ChannelState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ChannelState::Healthy => "healthy",
            ChannelState::Degraded => "degraded",
            ChannelState::Quarantined => "quarantined",
        })
    }
}

/// Tuning for the per-channel state machine.
///
/// `#[non_exhaustive]`: construct with [`Default`] and the `with_*`
/// methods so new knobs can be added without breaking callers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct HealthConfig {
    /// A window whose non-finite fraction reaches this goes straight to
    /// Quarantined (default 0.5: half the window is garbage).
    pub quarantine_nonfinite_frac: f64,
    /// Consecutive dirty windows before a Degraded channel is
    /// quarantined (default 3 — matches the trailing-min filter width,
    /// so quarantine engages no slower than an alert could).
    pub quarantine_after: usize,
    /// Consecutive clean windows to climb one state toward Healthy
    /// (default 5).
    pub recovery_windows: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            quarantine_nonfinite_frac: 0.5,
            quarantine_after: 3,
            recovery_windows: 5,
        }
    }
}

impl HealthConfig {
    /// Overrides the non-finite fraction that quarantines a window's
    /// channel outright.
    #[must_use]
    pub fn with_quarantine_nonfinite_frac(mut self, frac: f64) -> Self {
        self.quarantine_nonfinite_frac = frac;
        self
    }

    /// Overrides the dirty-streak length that escalates Degraded to
    /// Quarantined.
    #[must_use]
    pub fn with_quarantine_after(mut self, windows: usize) -> Self {
        self.quarantine_after = windows;
        self
    }

    /// Overrides the clean-streak length required to climb one state
    /// toward Healthy.
    #[must_use]
    pub fn with_recovery_windows(mut self, windows: usize) -> Self {
        self.recovery_windows = windows;
        self
    }
}

/// State machine instance for one channel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelHealth {
    state: ChannelState,
    dirty_streak: usize,
    clean_streak: usize,
    /// Total non-finite samples quarantined on this channel.
    nonfinite_samples: u64,
    /// Windows observed while not Healthy.
    impaired_windows: usize,
    /// Window index of the most recent state change, if any.
    last_transition: Option<usize>,
}

impl Default for ChannelHealth {
    fn default() -> Self {
        ChannelHealth {
            state: ChannelState::Healthy,
            dirty_streak: 0,
            clean_streak: 0,
            nonfinite_samples: 0,
            impaired_windows: 0,
            last_transition: None,
        }
    }
}

impl ChannelHealth {
    /// Current state.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// Adds quarantined samples to the channel's tally (called at
    /// chunk granularity, before windows complete).
    pub fn record_nonfinite(&mut self, samples: u64) {
        self.nonfinite_samples += samples;
    }

    /// Scores one completed window and advances the state machine.
    ///
    /// `nonfinite_frac` is the fraction of the window's samples that
    /// were non-finite before sanitizing; `flat` is true if the
    /// (sanitized) window has zero variance.
    pub fn observe_window(
        &mut self,
        window: usize,
        nonfinite_frac: f64,
        flat: bool,
        cfg: &HealthConfig,
    ) -> ChannelState {
        let dirty = nonfinite_frac > 0.0 || flat;
        let before = self.state;
        if dirty {
            self.dirty_streak += 1;
            self.clean_streak = 0;
            self.state = match self.state {
                ChannelState::Healthy => {
                    if nonfinite_frac >= cfg.quarantine_nonfinite_frac {
                        ChannelState::Quarantined
                    } else {
                        ChannelState::Degraded
                    }
                }
                ChannelState::Degraded => {
                    if nonfinite_frac >= cfg.quarantine_nonfinite_frac
                        || self.dirty_streak >= cfg.quarantine_after
                    {
                        ChannelState::Quarantined
                    } else {
                        ChannelState::Degraded
                    }
                }
                ChannelState::Quarantined => ChannelState::Quarantined,
            };
        } else {
            self.dirty_streak = 0;
            self.clean_streak += 1;
            if self.clean_streak >= cfg.recovery_windows {
                self.clean_streak = 0;
                self.state = match self.state {
                    ChannelState::Healthy => ChannelState::Healthy,
                    ChannelState::Degraded => ChannelState::Healthy,
                    ChannelState::Quarantined => ChannelState::Degraded,
                };
            }
        }
        if self.state != ChannelState::Healthy {
            self.impaired_windows += 1;
        }
        if self.state != before {
            self.last_transition = Some(window);
            if self.state == ChannelState::Quarantined {
                am_telemetry::count!("monitor.quarantines");
            }
        }
        self.state
    }

    /// Snapshot for reporting.
    pub fn status(&self) -> ChannelStatus {
        ChannelStatus {
            state: self.state,
            nonfinite_samples: self.nonfinite_samples,
            impaired_windows: self.impaired_windows,
            last_transition: self.last_transition,
        }
    }
}

/// Reportable view of one channel's health.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelStatus {
    /// Current state.
    pub state: ChannelState,
    /// Total non-finite samples quarantined on this channel.
    pub nonfinite_samples: u64,
    /// Windows spent Degraded or Quarantined.
    pub impaired_windows: usize,
    /// Window index of the most recent state change.
    pub last_transition: Option<usize>,
}

/// Aggregate health of a streaming detector, exposed through
/// `monitor::LiveStatus` and [`crate::streaming::StreamingIds`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HealthReport {
    /// Per-channel status, index-aligned with the capture channels.
    pub channels: Vec<ChannelStatus>,
    /// Windows for which *no* channel was usable (v_dist skipped).
    pub blind_windows: usize,
    /// Times the stream resynchronized after an internal fault.
    pub resyncs: usize,
}

impl HealthReport {
    /// `true` if every channel is Healthy and nothing was skipped.
    pub fn all_healthy(&self) -> bool {
        self.blind_windows == 0
            && self.resyncs == 0
            && self
                .channels
                .iter()
                .all(|c| c.state == ChannelState::Healthy)
    }

    /// Number of channels currently in a given state.
    pub fn count(&self, state: ChannelState) -> usize {
        self.channels.iter().filter(|c| c.state == state).count()
    }

    /// Merges another report into this one: channel statuses are
    /// concatenated (lane order is preserved by the caller), blind
    /// windows and resyncs summed. Used by
    /// [`FusedIds::health_report`](crate::fusion::FusedIds::health_report)
    /// to aggregate per-lane health.
    pub fn absorb(&mut self, other: &HealthReport) {
        self.channels.extend(other.channels.iter().copied());
        self.blind_windows += other.blind_windows;
        self.resyncs += other.resyncs;
    }

    /// One-line human summary (`healthy: 5/6, quarantined: [2]`).
    pub fn summary(&self) -> String {
        let quarantined: Vec<usize> = self
            .channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.state == ChannelState::Quarantined)
            .map(|(i, _)| i)
            .collect();
        format!(
            "healthy: {}/{}, degraded: {}, quarantined: {:?}, blind windows: {}, resyncs: {}",
            self.count(ChannelState::Healthy),
            self.channels.len(),
            self.count(ChannelState::Degraded),
            quarantined,
            self.blind_windows,
            self.resyncs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_until_dirty() {
        let cfg = HealthConfig::default();
        let mut h = ChannelHealth::default();
        for w in 0..10 {
            assert_eq!(h.observe_window(w, 0.0, false, &cfg), ChannelState::Healthy);
        }
        assert_eq!(
            h.observe_window(10, 0.1, false, &cfg),
            ChannelState::Degraded
        );
        assert_eq!(h.status().last_transition, Some(10));
    }

    #[test]
    fn nan_heavy_window_quarantines_immediately() {
        let cfg = HealthConfig::default();
        let mut h = ChannelHealth::default();
        assert_eq!(
            h.observe_window(0, 0.9, false, &cfg),
            ChannelState::Quarantined
        );
    }

    #[test]
    fn dirty_streak_escalates() {
        let cfg = HealthConfig::default();
        let mut h = ChannelHealth::default();
        // Flatline (no NaN) degrades, then quarantines after the streak.
        assert_eq!(h.observe_window(0, 0.0, true, &cfg), ChannelState::Degraded);
        assert_eq!(h.observe_window(1, 0.0, true, &cfg), ChannelState::Degraded);
        assert_eq!(
            h.observe_window(2, 0.0, true, &cfg),
            ChannelState::Quarantined
        );
    }

    #[test]
    fn recovery_is_hysteretic() {
        let cfg = HealthConfig {
            recovery_windows: 2,
            ..Default::default()
        };
        let mut h = ChannelHealth::default();
        h.observe_window(0, 0.9, false, &cfg);
        assert_eq!(h.state(), ChannelState::Quarantined);
        // One clean window is not enough.
        assert_eq!(
            h.observe_window(1, 0.0, false, &cfg),
            ChannelState::Quarantined
        );
        // Second clean window steps down to Degraded, not Healthy.
        assert_eq!(
            h.observe_window(2, 0.0, false, &cfg),
            ChannelState::Degraded
        );
        assert_eq!(
            h.observe_window(3, 0.0, false, &cfg),
            ChannelState::Degraded
        );
        assert_eq!(h.observe_window(4, 0.0, false, &cfg), ChannelState::Healthy);
        assert!(h.status().impaired_windows >= 4);
    }

    #[test]
    fn report_summary_counts() {
        let mut report = HealthReport::default();
        let cfg = HealthConfig::default();
        let mut a = ChannelHealth::default();
        let mut b = ChannelHealth::default();
        a.observe_window(0, 0.0, false, &cfg);
        b.observe_window(0, 1.0, false, &cfg);
        b.record_nonfinite(64);
        report.channels = vec![a.status(), b.status()];
        assert!(!report.all_healthy());
        assert_eq!(report.count(ChannelState::Healthy), 1);
        assert_eq!(report.count(ChannelState::Quarantined), 1);
        let s = report.summary();
        assert!(s.contains("healthy: 1/2"), "{s}");
        assert!(s.contains("[1]"), "{s}");
        assert_eq!(report.channels[1].nonfinite_samples, 64);
    }
}
