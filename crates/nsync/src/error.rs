//! Error type for the NSYNC framework.

use am_dsp::DspError;
use am_sync::SyncError;
use std::error::Error;
use std::fmt;

/// Errors from the NSYNC pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NsyncError {
    /// Synchronization failed.
    Sync(SyncError),
    /// A DSP operation failed.
    Dsp(DspError),
    /// Training input was invalid (e.g. no benign runs).
    InvalidTraining(String),
    /// A parameter was out of domain.
    InvalidParameter(String),
    /// The monitor's detector thread panicked and the supervisor's
    /// restart budget ran out. Carries the last window index that was
    /// fully processed before the crash.
    MonitorPanicked {
        /// Last fully processed window index before the panic.
        last_window: usize,
    },
    /// The streaming pipeline lost track of its window sequence (a
    /// completed window could not be read back from the stream).
    StreamDesynced {
        /// The window index that could not be recovered.
        window: usize,
    },
}

impl fmt::Display for NsyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NsyncError::Sync(e) => write!(f, "synchronization failed: {e}"),
            NsyncError::Dsp(e) => write!(f, "dsp error: {e}"),
            NsyncError::InvalidTraining(m) => write!(f, "invalid training: {m}"),
            NsyncError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
            NsyncError::MonitorPanicked { last_window } => write!(
                f,
                "monitor thread panicked (last good window {last_window})"
            ),
            NsyncError::StreamDesynced { window } => {
                write!(f, "stream desynchronized at window {window}")
            }
        }
    }
}

impl Error for NsyncError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NsyncError::Sync(e) => Some(e),
            NsyncError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SyncError> for NsyncError {
    fn from(e: SyncError) -> Self {
        NsyncError::Sync(e)
    }
}

impl From<DspError> for NsyncError {
    fn from(e: DspError) -> Self {
        NsyncError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: NsyncError = SyncError::TooShort { needed: 2, got: 1 }.into();
        assert!(e.to_string().contains("synchronization"));
        assert!(Error::source(&e).is_some());
        let d: NsyncError = DspError::NoChannels.into();
        assert!(d.to_string().contains("dsp"));
        let m = NsyncError::MonitorPanicked { last_window: 12 };
        assert!(m.to_string().contains("12"));
        let s = NsyncError::StreamDesynced { window: 7 };
        assert!(s.to_string().contains('7'));
    }
}
