//! The comparator: vertical distance calculation (§VII-A).
//!
//! Produces `v_dist[i]` over the corresponding units identified by the
//! synchronizer:
//!
//! - **DWM (windowed)**, Eq (16): `v_dist[i] = d(a{i}, b{i; h_disp[i]})`,
//!   with the multi-channel distance averaged across channels;
//! - **DTW (pointwise)**, Eq (15): per warp tuple `(i, j)`,
//!   `v_dist[i] = mean_k d(a[i], b[j_k])`, the distance taken across the
//!   channel axis of each frame.
//!
//! The default metric is the correlation distance (Eq 14) because it is
//! invariant to the per-run gain drift the DAQ introduces; Euclidean /
//! Manhattan are deliberately avoided by the paper (and available here
//! only for ablation experiments).

use crate::error::NsyncError;
use am_dsp::metrics::DistanceMetric;
use am_dsp::Signal;
use am_sync::{Alignment, AlignmentKind};

/// Computes the vertical distance array for an alignment.
///
/// # Errors
///
/// Returns [`NsyncError::Dsp`] if window shapes mismatch (only possible
/// with inconsistent alignments).
pub fn vertical_distances(
    a: &Signal,
    b: &Signal,
    alignment: &Alignment,
    metric: DistanceMetric,
) -> Result<Vec<f64>, NsyncError> {
    match &alignment.kind {
        AlignmentKind::Windowed { n_win, n_hop } => {
            let mut out = Vec::with_capacity(alignment.h_disp.len());
            for (i, &disp) in alignment.h_disp.iter().enumerate() {
                let a_start = i * n_hop;
                let a_win = a.slice_padded(a_start as isize, (a_start + n_win) as isize);
                let b_start = a_start as isize + disp.round() as isize;
                let b_win = b.slice_padded(b_start, b_start + *n_win as isize);
                out.push(metric.distance_multichannel(&a_win, &b_win)?);
            }
            Ok(out)
        }
        AlignmentKind::Pointwise { path } => {
            let mut sums = vec![0.0f64; a.len()];
            let mut counts = vec![0u32; a.len()];
            let c = a.channels();
            for &(i, j) in path {
                if i >= a.len() || j >= b.len() {
                    continue;
                }
                let u: Vec<f64> = (0..c).map(|ch| a.sample(i, ch)).collect();
                let v: Vec<f64> = (0..c).map(|ch| b.sample(j, ch)).collect();
                let d = if c >= 3 {
                    metric.distance(&u, &v)
                } else {
                    // Too few channels for a meaningful frame-wise
                    // correlation/cosine; fall back to mean abs error.
                    DistanceMetric::MeanAbsoluteError.distance(&u, &v)
                };
                sums[i] += d;
                counts[i] += 1;
            }
            Ok((0..a.len())
                .map(|i| {
                    if counts[i] > 0 {
                        sums[i] / counts[i] as f64
                    } else {
                        0.0
                    }
                })
                .collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_sync::{DwmParams, DwmSynchronizer, Synchronizer};

    fn wavy(fs: f64, secs: f64, gain: f64) -> Signal {
        let n = (fs * secs) as usize;
        Signal::from_fn(fs, 1, n, |t, f| {
            f[0] = gain * ((0.9 * t).sin() + 0.5 * (2.3 * t).cos())
        })
        .unwrap()
    }

    #[test]
    fn identical_signals_have_zero_windowed_distance() {
        let b = wavy(20.0, 60.0, 1.0);
        let sync = DwmSynchronizer::new(DwmParams::from_window(4.0));
        let al = sync.synchronize(&b, &b).unwrap();
        let v = vertical_distances(&b, &b, &al, DistanceMetric::Correlation).unwrap();
        assert!(!v.is_empty());
        for d in &v {
            assert!(d.abs() < 1e-9, "distance {d}");
        }
    }

    #[test]
    fn gain_change_is_invisible_to_correlation_distance() {
        let b = wavy(20.0, 60.0, 1.0);
        let a = wavy(20.0, 60.0, 2.5); // same process, different gain
        let sync = DwmSynchronizer::new(DwmParams::from_window(4.0));
        let al = sync.synchronize(&a, &b).unwrap();
        let v = vertical_distances(&a, &b, &al, DistanceMetric::Correlation).unwrap();
        for d in &v {
            assert!(d.abs() < 1e-6, "correlation distance {d}");
        }
        // ... but Euclidean sees it (the paper's argument for eq 14).
        let e = vertical_distances(&a, &b, &al, DistanceMetric::Euclidean).unwrap();
        assert!(e.iter().any(|d| *d > 0.1));
    }

    #[test]
    fn different_content_yields_large_distances() {
        let b = wavy(20.0, 60.0, 1.0);
        let a = Signal::from_fn(20.0, 1, b.len(), |t, f| {
            f[0] = (5.7 * t).sin() * (0.3 * t).cos()
        })
        .unwrap();
        let sync = DwmSynchronizer::new(DwmParams::from_window(4.0));
        let al = sync.synchronize(&a, &b).unwrap();
        let v = vertical_distances(&a, &b, &al, DistanceMetric::Correlation).unwrap();
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean > 0.3, "mean distance {mean}");
    }

    #[test]
    fn pointwise_distances_follow_the_path() {
        // 4-channel frames so the correlation-across-channels path is used.
        let n = 16;
        let mk = |shift: usize| {
            Signal::from_channels(
                10.0,
                (0..4)
                    .map(|c| {
                        (0..n)
                            .map(|i| ((i + shift) as f64 * 0.8 + c as f64).sin())
                            .collect()
                    })
                    .collect(),
            )
            .unwrap()
        };
        let a = mk(0);
        let b = mk(0);
        let path: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        let al = Alignment {
            h_disp: vec![0.0; n],
            kind: AlignmentKind::Pointwise { path },
        };
        let v = vertical_distances(&a, &b, &al, DistanceMetric::Correlation).unwrap();
        assert_eq!(v.len(), n);
        for d in &v {
            assert!(d.abs() < 1e-9);
        }
    }

    #[test]
    fn pointwise_eq15_averages_multiple_tuples() {
        let a = Signal::from_channels(10.0, vec![vec![1.0, 2.0]; 1]).unwrap();
        let b = Signal::from_channels(10.0, vec![vec![1.0, 5.0]; 1]).unwrap();
        // a[1] pairs with b[0] and b[1]: MAE distances |2-1|=1 and |2-5|=3,
        // mean 2.
        let al = Alignment {
            h_disp: vec![0.0, 0.0],
            kind: AlignmentKind::Pointwise {
                path: vec![(0, 0), (1, 0), (1, 1)],
            },
        };
        let v = vertical_distances(&a, &b, &al, DistanceMetric::Correlation).unwrap();
        assert_eq!(v, vec![0.0, 2.0]);
    }

    #[test]
    fn windowed_displacement_is_applied() {
        // b is a delayed copy of a; with the correct h_disp the distances
        // vanish, with zero h_disp they do not.
        let fs = 20.0;
        let b = wavy(fs, 60.0, 1.0);
        let shift = 20usize; // 1 s
        let a = Signal::mono(fs, b.channel(0)[shift..].to_vec()).unwrap();
        // a{i} matches b at i*hop + shift: h_disp = +shift.
        let n_win = 80;
        let n_hop = 40;
        let n_windows = (a.len() - n_win) / n_hop + 1;
        let right = Alignment {
            h_disp: vec![shift as f64; n_windows],
            kind: AlignmentKind::Windowed { n_win, n_hop },
        };
        let wrong = Alignment {
            h_disp: vec![0.0; n_windows],
            kind: AlignmentKind::Windowed { n_win, n_hop },
        };
        let v_right = vertical_distances(&a, &b, &right, DistanceMetric::Correlation).unwrap();
        let v_wrong = vertical_distances(&a, &b, &wrong, DistanceMetric::Correlation).unwrap();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&v_right) < 1e-6);
        assert!(mean(&v_wrong) > 10.0 * (mean(&v_right) + 1e-9));
    }
}
