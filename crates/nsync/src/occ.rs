//! One-Class Classification threshold learning (§VII-C).
//!
//! The thresholds are learned **only from benign runs** — no knowledge of
//! malicious processes is ever required (the paper's key practicality
//! argument against binary-classification IDSs):
//!
//! - Eq (23–25): per benign run `m`, take the maxima of the CADHD trace
//!   and the filtered h/v distance traces,
//! - Eq (26–28): `threshold = max_m + r · (max_m − min_m)` — the margin
//!   `r` trades FPR against FNR (larger `r`, fewer false positives).

use crate::discriminator::{Thresholds, TraceStats};
use crate::error::NsyncError;

/// Learns the critical values from per-run training statistics.
///
/// # Errors
///
/// Returns [`NsyncError::InvalidTraining`] when `stats` is empty and
/// [`NsyncError::InvalidParameter`] for negative or non-finite `r`.
pub fn learn_thresholds(stats: &[TraceStats], r: f64) -> Result<Thresholds, NsyncError> {
    if stats.is_empty() {
        return Err(NsyncError::InvalidTraining(
            "at least one benign training run is required".into(),
        ));
    }
    if !r.is_finite() || r < 0.0 {
        return Err(NsyncError::InvalidParameter(format!(
            "occ margin r must be finite and non-negative, got {r}"
        )));
    }
    let learn = |values: Vec<f64>| -> f64 {
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        max + r * (max - min)
    };
    Ok(Thresholds::new(
        learn(stats.iter().map(|s| s.c_max).collect()),
        learn(stats.iter().map(|s| s.h_max).collect()),
        learn(stats.iter().map(|s| s.v_max).collect()),
    ))
}

/// Linear-interpolated quantile of a **pre-sorted** sample set
/// (`q` clamped to `[0, 1]`); `None` on an empty set.
///
/// The online calibrator (DESIGN.md §15) re-derives per-printer critical
/// values from quantiles rather than the Eq 26–28 max/min: a printer's
/// own benign stream is short and noisy, and a single outlier window
/// must not set its threshold the way a vetted training run may.
pub fn quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(c: f64, h: f64, v: f64) -> TraceStats {
        TraceStats {
            c_max: c,
            h_max: h,
            v_max: v,
        }
    }

    #[test]
    fn single_run_thresholds_equal_its_maxima_at_r0() {
        let t = learn_thresholds(&[ts(5.0, 2.0, 0.3)], 0.0).unwrap();
        assert_eq!(t.c_c, 5.0);
        assert_eq!(t.h_c, 2.0);
        assert_eq!(t.v_c, 0.3);
    }

    #[test]
    fn margin_follows_eq26_28() {
        let stats = [ts(4.0, 1.0, 0.2), ts(8.0, 3.0, 0.4)];
        let t = learn_thresholds(&stats, 0.5).unwrap();
        // max + r (max - min)
        assert!((t.c_c - (8.0 + 0.5 * 4.0)).abs() < 1e-12);
        assert!((t.h_c - (3.0 + 0.5 * 2.0)).abs() < 1e-12);
        assert!((t.v_c - (0.4 + 0.5 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn higher_r_means_higher_thresholds() {
        let stats = [ts(4.0, 1.0, 0.2), ts(8.0, 3.0, 0.4)];
        let lo = learn_thresholds(&stats, 0.0).unwrap();
        let hi = learn_thresholds(&stats, 0.3).unwrap();
        assert!(hi.c_c > lo.c_c);
        assert!(hi.h_c > lo.h_c);
        assert!(hi.v_c > lo.v_c);
    }

    #[test]
    fn training_thresholds_never_flag_training_runs() {
        // With r > 0, every training run's maxima are strictly below the
        // learned thresholds (except when range is 0: then equal).
        let stats = [ts(4.0, 1.0, 0.2), ts(8.0, 3.0, 0.4), ts(6.0, 2.0, 0.3)];
        let t = learn_thresholds(&stats, 0.3).unwrap();
        for s in &stats {
            assert!(s.c_max <= t.c_c);
            assert!(s.h_max <= t.h_c);
            assert!(s.v_max <= t.v_c);
        }
    }

    #[test]
    fn validation() {
        assert!(learn_thresholds(&[], 0.3).is_err());
        assert!(learn_thresholds(&[ts(1.0, 1.0, 1.0)], -0.1).is_err());
        assert!(learn_thresholds(&[ts(1.0, 1.0, 1.0)], f64::NAN).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        assert_eq!(quantile(&[], 0.5), None);
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&s, 0.0), Some(1.0));
        assert_eq!(quantile(&s, 1.0), Some(4.0));
        assert_eq!(quantile(&s, 0.5), Some(2.5));
        // Out-of-domain q clamps instead of panicking.
        assert_eq!(quantile(&s, 2.0), Some(4.0));
        assert_eq!(quantile(&[7.0], 0.9), Some(7.0));
    }
}
