//! `nsync-repro` — command-line driver for the reproduction.
//!
//! ```text
//! nsync-repro <command> [--printer um3|rm3] [--seed N]
//!
//! commands:
//!   fig1        time-noise duration spread
//!   fig2        no-DSYNC distance blow-up
//!   fig6        DWM parametric analysis
//!   fig10       h_disp consistency across channels
//!   fig11       synchronizer timing
//!   tables      Tables V–IX + Fig 12 (full grid; minutes)
//!   ablations   design-choice ablations
//! ```

use am_dataset::{ExperimentSpec, TrajectorySet};
use am_eval::ablations::{
    filter_window_ablation, metric_gain_sensitivity, per_attack_tpr, tdeb_bias_ablation,
};
use am_eval::figures::{
    fig10_hdisp, fig11_sync_timing, fig1_durations, fig2_no_sync_distances, fig6_eta, fig6_sigma,
    fig6_window, hdisp_consistency,
};
use am_eval::harness::Transform;
use am_eval::tables::{
    average_accuracies, run_grid, table5, table6, table7, table8, table9, TableContext,
};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;

fn usage() -> ! {
    eprintln!(
        "usage: nsync-repro <fig1|fig2|fig6|fig10|fig11|tables|ablations> \
         [--printer um3|rm3] [--seed N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let mut printer = PrinterModel::Um3;
    let mut seed = 0x5EEDu64;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--printer" => match it.next().map(String::as_str) {
                Some("um3") | Some("UM3") => printer = PrinterModel::Um3,
                Some("rm3") | Some("RM3") => printer = PrinterModel::Rm3,
                _ => usage(),
            },
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    if let Err(e) = run(command, printer, seed) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn make_set(printer: PrinterModel, seed: u64) -> Result<TrajectorySet, Box<dyn std::error::Error>> {
    let mut spec = ExperimentSpec::small(printer);
    spec.base_seed = seed;
    Ok(TrajectorySet::generate(spec)?)
}

fn run(command: &str, printer: PrinterModel, seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    match command {
        "fig1" => {
            let set = make_set(printer, seed)?;
            println!("Fig 1 — motion durations of identical G-code ({printer}):");
            for (label, secs) in fig1_durations(&set, 8) {
                println!("  {label:<12} {secs:.2} s");
            }
        }
        "fig2" => {
            let set = make_set(printer, seed)?;
            let (benign, malicious) = fig2_no_sync_distances(&set, SideChannel::Acc)?;
            println!("Fig 2 — correlation distances without DSYNC (ACC, {printer}):");
            println!("  t(s)    benign  malicious");
            for i in (0..benign.y.len().min(malicious.y.len())).step_by(4) {
                println!(
                    "  {:>5.0}  {:>7.3}  {:>8.3}",
                    benign.x[i], benign.y[i], malicious.y[i]
                );
            }
        }
        "fig6" => {
            let set = make_set(printer, seed)?;
            println!("Fig 6 — parametric analysis (h_disp range, s):");
            for s in fig6_sigma(&set, SideChannel::Acc, &[0.1, 0.25, 0.5, 1.0, 2.0])? {
                println!("  (a) {:<14} {:.3}", s.label, s.y_range());
            }
            for s in fig6_window(&set, SideChannel::Acc, &[1.0, 2.0, 4.0, 8.0])? {
                println!("  (b) {:<14} {:.3}", s.label, s.y_range());
            }
            for s in fig6_eta(&set, SideChannel::Acc, &[0.05, 0.1, 0.5, 1.0])? {
                println!("  (c) {:<14} {:.3}", s.label, s.y_range());
            }
        }
        "fig10" => {
            let set = make_set(printer, seed)?;
            let series = fig10_hdisp(&set, &SideChannel::all())?;
            let anchor = series[0].clone();
            println!(
                "Fig 10 — h_disp consistency vs {} ({printer}):",
                anchor.label
            );
            for s in &series {
                println!(
                    "  {:<18} range {:>7.3} s   consistency {:+.2}",
                    s.label,
                    s.y_range(),
                    hdisp_consistency(&anchor, s)
                );
            }
        }
        "fig11" => {
            let set = make_set(printer, seed)?;
            println!("Fig 11 — time to synchronize 1 s of spectrogram ({printer}):");
            for (name, ratio) in fig11_sync_timing(&set, &SideChannel::kept())? {
                println!("  {name:<14} {ratio:.6} s");
            }
        }
        "tables" => {
            let ctx = TableContext::small()?;
            let grid = run_grid(&ctx)?;
            println!("{}", table5(&grid));
            println!("{}", table6(&grid));
            println!("{}", table7(&grid));
            println!("{}", table8(&grid));
            println!("{}", table9(&grid));
            println!("Fig 12 — average accuracies:");
            for (name, acc) in average_accuracies(&grid) {
                println!("  {name:<16} {acc:.3}");
            }
        }
        "ablations" => {
            let set = make_set(printer, seed)?;
            println!("Ablation 1 — gain x1.8 inflation by metric:");
            for r in metric_gain_sensitivity(&set, SideChannel::Acc)? {
                println!("  {:<12} x{:.2}", r.metric.to_string(), r.gain_inflation());
            }
            let (biased, unbiased) = tdeb_bias_ablation(&set, SideChannel::Acc)?;
            println!("Ablation 2 — benign CADHD: biased {biased:.0}, unbiased {unbiased:.0}");
            println!("Ablation 3 — spike-filter window:");
            for (w, rates) in filter_window_ablation(&set, SideChannel::Acc, &[1, 3, 5])? {
                println!(
                    "  window {w}: {}  accuracy {:.3}",
                    rates.cell(),
                    rates.accuracy()
                );
            }
            println!("Ablation 4 — per-attack TPR (ACC raw):");
            for (attack, rates) in per_attack_tpr(&set, SideChannel::Acc, Transform::Raw)? {
                println!("  {attack:<12} {:.2}", rates.tpr());
            }
        }
        _ => usage(),
    }
    Ok(())
}
