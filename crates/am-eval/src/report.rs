//! Plain-text table rendering for terminal output and EXPERIMENTS.md.

/// A renderable table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    /// Title line.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells (ragged rows are padded on render).
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: Vec<&str>) -> Self {
        TextTable {
            title: title.into(),
            header: header.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        };
        measure(&mut widths, &self.header);
        for row in &self.rows {
            measure(&mut widths, row);
        }
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::from("|");
            for (i, &width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!(" {cell:<width$} |"));
            }
            line
        };
        let sep = {
            let mut line = String::from("|");
            for w in &widths {
                line.push_str(&format!("{}|", "-".repeat(w + 2)));
            }
            line
        };
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new("Demo", vec!["A", "Long header"]);
        t.push_row(vec!["x".into(), "1".into()]);
        t.push_row(vec!["yyyy".into(), "2".into()]);
        let s = t.render();
        assert!(s.starts_with("Demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // All rows equal width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn ragged_rows_padded() {
        let mut t = TextTable::new("R", vec!["A", "B", "C"]);
        t.push_row(vec!["1".into()]);
        let s = t.render();
        assert!(s.contains("| 1 |"));
        assert_eq!(t.to_string(), s);
    }
}
