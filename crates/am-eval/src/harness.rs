//! Train/test splits over capture sets, and the evaluation error type.
//!
//! The per-IDS drivers that used to live here (`eval_moore`, `eval_gao`,
//! …, `eval_nsync`) are gone: every IDS now implements
//! [`crate::detector::Detector`] and is driven by
//! [`crate::engine::evaluate_split`].

use am_baselines::{BaselineError, RunData};
use am_dataset::{Capture, DatasetError, RunRole, TrajectorySet};
use am_sensors::channel::SideChannel;
use am_sync::SyncError;
use nsync::NsyncError;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

pub use am_dataset::Transform;

/// Evaluation errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum EvalError {
    /// Dataset generation/capture failed.
    Dataset(DatasetError),
    /// NSYNC pipeline failed.
    Nsync(NsyncError),
    /// A baseline failed.
    Baseline(BaselineError),
    /// A synchronizer failed outside NSYNC.
    Sync(SyncError),
    /// The split was unusable.
    InvalidSplit(String),
    /// A detector was judged before being fitted.
    NotFitted(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Dataset(e) => write!(f, "dataset: {e}"),
            EvalError::Nsync(e) => write!(f, "nsync: {e}"),
            EvalError::Baseline(e) => write!(f, "baseline: {e}"),
            EvalError::Sync(e) => write!(f, "sync: {e}"),
            EvalError::InvalidSplit(m) => write!(f, "invalid split: {m}"),
            EvalError::NotFitted(name) => write!(f, "detector {name} judged before fit"),
        }
    }
}

impl Error for EvalError {}

impl From<DatasetError> for EvalError {
    fn from(e: DatasetError) -> Self {
        EvalError::Dataset(e)
    }
}
impl From<NsyncError> for EvalError {
    fn from(e: NsyncError) -> Self {
        EvalError::Nsync(e)
    }
}
impl From<BaselineError> for EvalError {
    fn from(e: BaselineError) -> Self {
        EvalError::Baseline(e)
    }
}
impl From<SyncError> for EvalError {
    fn from(e: SyncError) -> Self {
        EvalError::Sync(e)
    }
}

/// A dataset split by role. Captures are held behind `Arc`, so splits
/// built over a [`am_dataset::CaptureStore`] are cheap views — cloning a
/// split (or building several splits over the same capture set) never
/// copies a signal.
#[derive(Debug, Clone)]
pub struct Split {
    /// The reference capture.
    pub reference: Arc<Capture>,
    /// OCC training captures (benign).
    pub train: Vec<Arc<Capture>>,
    /// Test captures (benign + malicious; `role` tells which).
    pub tests: Vec<Arc<Capture>>,
}

impl Split {
    /// Splits shared captures by role without copying any signal.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidSplit`] if the reference or training
    /// captures are missing.
    pub fn from_shared(captures: &[Arc<Capture>]) -> Result<Split, EvalError> {
        let mut reference = None;
        let mut train = Vec::new();
        let mut tests = Vec::new();
        for c in captures {
            match c.role {
                RunRole::Reference => reference = Some(c.clone()),
                RunRole::Train(_) => train.push(c.clone()),
                RunRole::TestBenign(_) | RunRole::Malicious { .. } => tests.push(c.clone()),
            }
        }
        let reference =
            reference.ok_or_else(|| EvalError::InvalidSplit("missing reference".into()))?;
        if train.is_empty() {
            return Err(EvalError::InvalidSplit("no training captures".into()));
        }
        Ok(Split {
            reference,
            train,
            tests,
        })
    }

    /// Splits owned captures by role.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidSplit`] if the reference or training
    /// captures are missing.
    pub fn from_captures(captures: Vec<Capture>) -> Result<Split, EvalError> {
        let shared: Vec<Arc<Capture>> = captures.into_iter().map(Arc::new).collect();
        Split::from_shared(&shared)
    }

    /// Generates the split for one channel + transform of an experiment.
    /// Prefer building a [`am_dataset::CaptureStore`] when several
    /// detectors share the same captures.
    ///
    /// # Errors
    ///
    /// Propagates capture failures.
    pub fn generate(
        set: &TrajectorySet,
        channel: SideChannel,
        transform: Transform,
    ) -> Result<Split, EvalError> {
        Split::from_captures(set.capture(channel, transform)?)
    }
}

/// Converts a capture into the baselines' run representation.
pub fn to_run_data(c: &Capture) -> RunData {
    RunData::new(c.signal.clone(), c.layer_times.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_dataset::{CaptureStore, ExperimentSpec};
    use am_printer::config::PrinterModel;

    fn small_set() -> TrajectorySet {
        TrajectorySet::generate(ExperimentSpec::small(PrinterModel::Um3)).unwrap()
    }

    #[test]
    fn split_roles() {
        let set = small_set();
        let split = Split::generate(&set, SideChannel::Mag, Transform::Raw).unwrap();
        let mix = set.spec.profile.process_mix();
        assert_eq!(split.train.len(), mix.train);
        assert_eq!(
            split.tests.len(),
            mix.test_benign + 5 * mix.malicious_per_attack
        );
        let malicious = split.tests.iter().filter(|t| !t.role.is_benign()).count();
        assert_eq!(malicious, 5 * mix.malicious_per_attack);
    }

    #[test]
    fn split_validation() {
        assert!(Split::from_captures(vec![]).is_err());
        assert!(Split::from_shared(&[]).is_err());
    }

    #[test]
    fn split_over_store_is_a_view() {
        let set = small_set();
        let store = CaptureStore::new(&set);
        let captures = store.get(SideChannel::Mag, Transform::Raw).unwrap();
        let a = Split::from_shared(&captures).unwrap();
        let b = Split::from_shared(&captures).unwrap();
        // Same underlying captures, no signal copies.
        assert!(Arc::ptr_eq(&a.reference, &b.reference));
        assert!(Arc::ptr_eq(&a.tests[0], &b.tests[0]));
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn not_fitted_displays_detector_name() {
        let e = EvalError::NotFitted("Moore".into());
        assert!(e.to_string().contains("Moore"));
    }
}
