//! Train/test splitting and per-IDS evaluation drivers.

use crate::metrics::Rates;
use am_baselines::bayens::BayensIds;
use am_baselines::belikovetsky::BelikovetskyIds;
use am_baselines::gao::GaoIds;
use am_baselines::gatlin::GatlinIds;
use am_baselines::moore::MooreIds;
use am_baselines::{BaselineDetector, BaselineError, RunData};
use am_dataset::{Capture, DatasetError, RunRole, TrajectorySet};
use am_sensors::channel::SideChannel;
use am_sync::{SyncError, Synchronizer};
use nsync::discriminator::SubModule;
use nsync::{NsyncError, NsyncIds};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Signal transformation applied before an IDS sees the data (§VIII-A
/// "Spectrograms").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transform {
    /// The raw captured signal.
    Raw,
    /// The Table III log-magnitude spectrogram.
    Spectrogram,
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Transform::Raw => "Raw",
            Transform::Spectrogram => "Spectro.",
        })
    }
}

/// Evaluation errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum EvalError {
    /// Dataset generation/capture failed.
    Dataset(DatasetError),
    /// NSYNC pipeline failed.
    Nsync(NsyncError),
    /// A baseline failed.
    Baseline(BaselineError),
    /// A synchronizer failed outside NSYNC.
    Sync(SyncError),
    /// The split was unusable.
    InvalidSplit(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Dataset(e) => write!(f, "dataset: {e}"),
            EvalError::Nsync(e) => write!(f, "nsync: {e}"),
            EvalError::Baseline(e) => write!(f, "baseline: {e}"),
            EvalError::Sync(e) => write!(f, "sync: {e}"),
            EvalError::InvalidSplit(m) => write!(f, "invalid split: {m}"),
        }
    }
}

impl Error for EvalError {}

impl From<DatasetError> for EvalError {
    fn from(e: DatasetError) -> Self {
        EvalError::Dataset(e)
    }
}
impl From<NsyncError> for EvalError {
    fn from(e: NsyncError) -> Self {
        EvalError::Nsync(e)
    }
}
impl From<BaselineError> for EvalError {
    fn from(e: BaselineError) -> Self {
        EvalError::Baseline(e)
    }
}
impl From<SyncError> for EvalError {
    fn from(e: SyncError) -> Self {
        EvalError::Sync(e)
    }
}

/// A dataset split by role.
#[derive(Debug, Clone)]
pub struct Split {
    /// The reference capture.
    pub reference: Capture,
    /// OCC training captures (benign).
    pub train: Vec<Capture>,
    /// Test captures (benign + malicious; `role` tells which).
    pub tests: Vec<Capture>,
}

impl Split {
    /// Splits a capture set by role.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::InvalidSplit`] if the reference or training
    /// captures are missing.
    pub fn from_captures(captures: Vec<Capture>) -> Result<Split, EvalError> {
        let mut reference = None;
        let mut train = Vec::new();
        let mut tests = Vec::new();
        for c in captures {
            match c.role {
                RunRole::Reference => reference = Some(c),
                RunRole::Train(_) => train.push(c),
                RunRole::TestBenign(_) | RunRole::Malicious { .. } => tests.push(c),
            }
        }
        let reference =
            reference.ok_or_else(|| EvalError::InvalidSplit("missing reference".into()))?;
        if train.is_empty() {
            return Err(EvalError::InvalidSplit("no training captures".into()));
        }
        Ok(Split {
            reference,
            train,
            tests,
        })
    }

    /// Generates the split for one channel + transform of an experiment.
    ///
    /// # Errors
    ///
    /// Propagates capture failures.
    pub fn generate(
        set: &TrajectorySet,
        channel: SideChannel,
        transform: Transform,
    ) -> Result<Split, EvalError> {
        let captures = match transform {
            Transform::Raw => set.capture_channel(channel)?,
            Transform::Spectrogram => set.capture_spectrogram(channel)?,
        };
        Split::from_captures(captures)
    }
}

fn to_run_data(c: &Capture) -> RunData {
    RunData::new(c.signal.clone(), c.layer_times.clone())
}

/// NSYNC evaluation outcome: overall plus per-sub-module rates (the
/// "Individual Sub-Module Results" columns of Tables VIII/IX).
#[derive(Debug, Clone, Copy, Default)]
pub struct NsyncOutcome {
    /// Any sub-module fires.
    pub overall: Rates,
    /// CADHD alone.
    pub c_disp: Rates,
    /// Horizontal distance alone.
    pub h_dist: Rates,
    /// Vertical distance alone.
    pub v_dist: Rates,
}

/// Trains and tests an NSYNC instance on a split.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn eval_nsync(
    split: &Split,
    synchronizer: Box<dyn Synchronizer + Send + Sync>,
    r: f64,
) -> Result<NsyncOutcome, EvalError> {
    let ids = NsyncIds::new(synchronizer);
    let train_signals: Vec<am_dsp::Signal> = split.train.iter().map(|c| c.signal.clone()).collect();
    let trained = ids.train(&train_signals, split.reference.signal.clone(), r)?;
    let mut out = NsyncOutcome::default();
    for test in &split.tests {
        let malicious = !test.role.is_benign();
        let detection = trained.detect(&test.signal)?;
        out.overall.record(malicious, detection.intrusion);
        out.c_disp
            .record(malicious, detection.fired(SubModule::CDisp));
        out.h_dist
            .record(malicious, detection.fired(SubModule::HDist));
        out.v_dist
            .record(malicious, detection.fired(SubModule::VDist));
    }
    Ok(out)
}

fn eval_detector<D: BaselineDetector>(
    split: &Split,
    detector: &D,
) -> Result<(Rates, Vec<(String, Rates)>), EvalError> {
    let mut overall = Rates::default();
    let mut subs: Vec<(String, Rates)> = Vec::new();
    for test in &split.tests {
        let malicious = !test.role.is_benign();
        let verdict = detector.detect(&to_run_data(test))?;
        overall.record(malicious, verdict.intrusion);
        for (name, fired) in &verdict.sub_modules {
            match subs.iter_mut().find(|(n, _)| n == name) {
                Some((_, r)) => r.record(malicious, *fired),
                None => {
                    let mut r = Rates::default();
                    r.record(malicious, *fired);
                    subs.push((name.clone(), r));
                }
            }
        }
    }
    Ok((overall, subs))
}

/// Comparison block size for the point-by-point baselines: ~100
/// comparisons per second of signal keeps raw multi-kHz channels cheap
/// without changing behaviour.
fn moore_block(fs: f64) -> usize {
    ((fs / 100.0).round() as usize).max(1)
}

/// Evaluates Moore's IDS (no DSYNC) on a split.
///
/// # Errors
///
/// Propagates baseline failures.
pub fn eval_moore(split: &Split, r: f64) -> Result<Rates, EvalError> {
    let reference = to_run_data(&split.reference);
    let train: Vec<RunData> = split.train.iter().map(to_run_data).collect();
    let ids = MooreIds::train_with_block(
        &reference,
        &train,
        r,
        moore_block(split.reference.signal.fs()),
    )?;
    Ok(eval_detector(split, &ids)?.0)
}

/// Evaluates Gao's IDS (layer-level DSYNC) on a split.
///
/// # Errors
///
/// Propagates baseline failures.
pub fn eval_gao(split: &Split, r: f64) -> Result<Rates, EvalError> {
    let reference = to_run_data(&split.reference);
    let train: Vec<RunData> = split.train.iter().map(to_run_data).collect();
    let ids = GaoIds::train_with_block(
        &reference,
        &train,
        r,
        moore_block(split.reference.signal.fs()),
    )?;
    Ok(eval_detector(split, &ids)?.0)
}

/// Gatlin outcome with the Time / Match sub-modules of Table VII.
#[derive(Debug, Clone, Default)]
pub struct GatlinOutcome {
    /// Either sub-module fires.
    pub overall: Rates,
    /// Layer-timing sub-module.
    pub time: Rates,
    /// Fingerprint-match sub-module.
    pub matching: Rates,
}

/// Evaluates Gatlin's IDS on a split.
///
/// # Errors
///
/// Propagates baseline failures.
pub fn eval_gatlin(split: &Split, r: f64) -> Result<GatlinOutcome, EvalError> {
    let reference = to_run_data(&split.reference);
    let train: Vec<RunData> = split.train.iter().map(to_run_data).collect();
    let ids = GatlinIds::train(&reference, &train, r)?;
    let (overall, subs) = eval_detector(split, &ids)?;
    let find = |name: &str| {
        subs.iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
            .unwrap_or_default()
    };
    Ok(GatlinOutcome {
        overall,
        time: find("time"),
        matching: find("match"),
    })
}

/// Bayens outcome with the Sequence / Threshold sub-modules of Table VI.
#[derive(Debug, Clone, Default)]
pub struct BayensOutcome {
    /// Either sub-module fires.
    pub overall: Rates,
    /// Window-sequence sub-module.
    pub sequence: Rates,
    /// Retrieval-score sub-module.
    pub threshold: Rates,
}

/// Evaluates Bayens' IDS (audio only) with the given retrieval window.
///
/// # Errors
///
/// Propagates baseline failures.
pub fn eval_bayens(split: &Split, window_seconds: f64, r: f64) -> Result<BayensOutcome, EvalError> {
    let reference = to_run_data(&split.reference);
    let train: Vec<RunData> = split.train.iter().map(to_run_data).collect();
    let ids = BayensIds::train(&reference, &train, window_seconds, r)?;
    let (overall, subs) = eval_detector(split, &ids)?;
    let find = |name: &str| {
        subs.iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
            .unwrap_or_default()
    };
    Ok(BayensOutcome {
        overall,
        sequence: find("sequence"),
        threshold: find("threshold"),
    })
}

/// Evaluates Belikovetsky's IDS (audio spectrograms only).
///
/// # Errors
///
/// Propagates baseline failures.
pub fn eval_belikovetsky(split: &Split) -> Result<Rates, EvalError> {
    let reference = to_run_data(&split.reference);
    let ids = BelikovetskyIds::train(&reference)?;
    Ok(eval_detector(split, &ids)?.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_dataset::ExperimentSpec;
    use am_printer::config::PrinterModel;
    use am_sync::DwmSynchronizer;

    fn small_set() -> TrajectorySet {
        TrajectorySet::generate(ExperimentSpec::small(PrinterModel::Um3)).unwrap()
    }

    #[test]
    fn split_roles() {
        let set = small_set();
        let split = Split::generate(&set, SideChannel::Mag, Transform::Raw).unwrap();
        let mix = set.spec.profile.process_mix();
        assert_eq!(split.train.len(), mix.train);
        assert_eq!(
            split.tests.len(),
            mix.test_benign + 5 * mix.malicious_per_attack
        );
        let malicious = split.tests.iter().filter(|t| !t.role.is_benign()).count();
        assert_eq!(malicious, 5 * mix.malicious_per_attack);
    }

    #[test]
    fn split_validation() {
        assert!(Split::from_captures(vec![]).is_err());
    }

    #[test]
    fn nsync_dwm_on_mag_raw_beats_chance() {
        // A single channel/transform end-to-end smoke test; the full grid
        // lives in the bench targets.
        let set = small_set();
        let split = Split::generate(&set, SideChannel::Mag, Transform::Raw).unwrap();
        let params = set.spec.profile.dwm_params(set.spec.printer);
        let out = eval_nsync(
            &split,
            Box::new(DwmSynchronizer::new(params)),
            set.spec.profile.nsync_r(),
        )
        .unwrap();
        assert!(out.overall.accuracy() > 0.6, "{:?}", out.overall);
        assert_eq!(
            out.overall.benign + out.overall.malicious,
            split.tests.len()
        );
    }

    #[test]
    fn moore_and_gao_run() {
        let set = small_set();
        let split = Split::generate(&set, SideChannel::Mag, Transform::Raw).unwrap();
        let m = eval_moore(&split, 0.0).unwrap();
        let g = eval_gao(&split, 0.0).unwrap();
        assert_eq!(m.benign + m.malicious, split.tests.len());
        assert_eq!(g.benign + g.malicious, split.tests.len());
    }

    #[test]
    fn gatlin_submodules_populated() {
        let set = small_set();
        let split = Split::generate(&set, SideChannel::Mag, Transform::Raw).unwrap();
        let out = eval_gatlin(&split, 0.0).unwrap();
        assert_eq!(out.time.benign, out.overall.benign);
        assert_eq!(out.matching.malicious, out.overall.malicious);
        // Timing attacks (Speed0.95, Layer0.3) must be caught by Time.
        assert!(out.time.tpr() > 0.3, "{:?}", out.time);
    }
}
