//! Tables V–IX: the paper's detection-result tables as runnable code.
//!
//! [`run_grid`] computes every IDS over every (printer × channel ×
//! transform) cell once; the `table*` functions render the published
//! table layouts from those results. Regenerate everything with the
//! `bench` crate's targets or `examples/reproduce_tables.rs`.

use crate::harness::{
    eval_bayens, eval_belikovetsky, eval_gao, eval_gatlin, eval_moore, eval_nsync, BayensOutcome,
    EvalError, GatlinOutcome, NsyncOutcome, Split, Transform,
};
use crate::metrics::Rates;
use crate::report::TextTable;
use am_dataset::{ExperimentSpec, TrajectorySet};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sync::{DtwSynchronizer, DwmSynchronizer, Synchronizer};

/// All prepared experiments (one [`TrajectorySet`] per printer).
pub struct TableContext {
    /// One set per printer.
    pub sets: Vec<TrajectorySet>,
}

impl TableContext {
    /// Generates the Small-profile experiments for both printers.
    ///
    /// # Errors
    ///
    /// Propagates dataset generation failures.
    pub fn small() -> Result<Self, EvalError> {
        let mut sets = Vec::new();
        for printer in PrinterModel::both() {
            sets.push(TrajectorySet::generate(ExperimentSpec::small(printer))?);
        }
        Ok(TableContext { sets })
    }

    /// Wraps pre-generated sets.
    pub fn from_sets(sets: Vec<TrajectorySet>) -> Self {
        TableContext { sets }
    }
}

/// One evaluated grid cell.
#[derive(Debug, Clone)]
pub struct Cell<T> {
    /// Printer.
    pub printer: PrinterModel,
    /// Side channel.
    pub channel: SideChannel,
    /// Raw or spectrogram.
    pub transform: Transform,
    /// The IDS outcome.
    pub outcome: T,
}

/// Everything §VIII measures, computed once.
#[derive(Debug, Clone, Default)]
pub struct GridResults {
    /// Moore's IDS (Table V left).
    pub moore: Vec<Cell<Rates>>,
    /// Gao's IDS (Table V right).
    pub gao: Vec<Cell<Rates>>,
    /// Gatlin's IDS (Table VII), raw signals.
    pub gatlin: Vec<Cell<GatlinOutcome>>,
    /// Bayens' IDS (Table VI): (printer, window seconds, outcome).
    pub bayens: Vec<(PrinterModel, f64, BayensOutcome)>,
    /// Belikovetsky's IDS (§VIII-C text): per printer.
    pub belikovetsky: Vec<(PrinterModel, Rates)>,
    /// NSYNC/DWM (Table VIII).
    pub nsync_dwm: Vec<Cell<NsyncOutcome>>,
    /// NSYNC/DTW (Table IX), spectrograms only.
    pub nsync_dtw: Vec<Cell<NsyncOutcome>>,
}

/// Runs the full evaluation grid. This is the expensive call — minutes at
/// the Small profile in release mode; everything downstream (tables,
/// Fig 12) renders from the returned struct.
///
/// # Errors
///
/// Propagates capture and IDS failures.
pub fn run_grid(ctx: &TableContext) -> Result<GridResults, EvalError> {
    let mut g = GridResults::default();
    for set in &ctx.sets {
        let printer = set.spec.printer;
        let profile = set.spec.profile;
        let r = profile.nsync_r();
        for channel in SideChannel::kept() {
            for transform in [Transform::Raw, Transform::Spectrogram] {
                let split = Split::generate(set, channel, transform)?;
                g.moore.push(Cell {
                    printer,
                    channel,
                    transform,
                    outcome: eval_moore(&split, 0.0)?,
                });
                g.gao.push(Cell {
                    printer,
                    channel,
                    transform,
                    outcome: eval_gao(&split, 0.0)?,
                });
                if transform == Transform::Raw {
                    g.gatlin.push(Cell {
                        printer,
                        channel,
                        transform,
                        outcome: eval_gatlin(&split, 0.0)?,
                    });
                }
                // NSYNC/DWM runs on both transforms; NSYNC/DTW only on
                // spectrograms ("we were not able to apply DTW on the raw
                // signals because it took forever").
                let dwm: Box<dyn Synchronizer + Send + Sync> =
                    Box::new(DwmSynchronizer::new(profile.dwm_params(printer)));
                g.nsync_dwm.push(Cell {
                    printer,
                    channel,
                    transform,
                    outcome: eval_nsync(&split, dwm, r)?,
                });
                if transform == Transform::Spectrogram {
                    let dtw: Box<dyn Synchronizer + Send + Sync> =
                        Box::new(DtwSynchronizer::default());
                    g.nsync_dtw.push(Cell {
                        printer,
                        channel,
                        transform,
                        outcome: eval_nsync(&split, dtw, r)?,
                    });
                }
            }
        }
        // Audio-only IDSs.
        let aud_raw = Split::generate(set, SideChannel::Aud, Transform::Raw)?;
        for window in profile.bayens_windows() {
            g.bayens
                .push((printer, window, eval_bayens(&aud_raw, window, 0.0)?));
        }
        let aud_spec = Split::generate(set, SideChannel::Aud, Transform::Spectrogram)?;
        g.belikovetsky
            .push((printer, eval_belikovetsky(&aud_spec)?));
    }
    Ok(g)
}

/// Table V: Moore's and Gao's IDSs.
pub fn table5(g: &GridResults) -> TextTable {
    let mut t = TextTable::new(
        "Table V: Results for Moore's and Gao's IDSs (FPR / TPR)",
        vec![
            "P",
            "Side Ch.",
            "Moore Raw",
            "Moore Spectro.",
            "Gao Raw",
            "Gao Spectro.",
        ],
    );
    for printer in PrinterModel::both() {
        for channel in SideChannel::kept() {
            let find = |cells: &[Cell<Rates>], tr: Transform| {
                cells
                    .iter()
                    .find(|c| c.printer == printer && c.channel == channel && c.transform == tr)
                    .map(|c| c.outcome.cell())
                    .unwrap_or_else(|| "-".into())
            };
            t.push_row(vec![
                printer.to_string(),
                channel.to_string(),
                find(&g.moore, Transform::Raw),
                find(&g.moore, Transform::Spectrogram),
                find(&g.gao, Transform::Raw),
                find(&g.gao, Transform::Spectrogram),
            ]);
        }
    }
    t
}

/// Table VI: Bayens' IDS (plus the Belikovetsky single-row result the
/// paper reports in §VIII-C prose).
pub fn table6(g: &GridResults) -> TextTable {
    let mut t = TextTable::new(
        "Table VI: Detection Results for Bayens' IDS (AUD only; FPR / TPR)",
        vec!["Printer", "Window (s)", "Overall", "Sequence", "Threshold"],
    );
    for (printer, window, out) in &g.bayens {
        t.push_row(vec![
            printer.to_string(),
            format!("{window}"),
            out.overall.cell(),
            out.sequence.cell(),
            out.threshold.cell(),
        ]);
    }
    for (printer, rates) in &g.belikovetsky {
        t.push_row(vec![
            printer.to_string(),
            "Belikovetsky".into(),
            rates.cell(),
            "-".into(),
            "-".into(),
        ]);
    }
    t
}

/// Table VII: Gatlin's IDS.
pub fn table7(g: &GridResults) -> TextTable {
    let mut t = TextTable::new(
        "Table VII: Detection Results for Gatlin's IDS (FPR / TPR)",
        vec!["Printer", "Side Ch.", "Overall", "Time", "Match"],
    );
    for cell in &g.gatlin {
        t.push_row(vec![
            cell.printer.to_string(),
            cell.channel.to_string(),
            cell.outcome.overall.cell(),
            cell.outcome.time.cell(),
            cell.outcome.matching.cell(),
        ]);
    }
    t
}

fn nsync_table(title: &str, cells: &[Cell<NsyncOutcome>]) -> TextTable {
    let mut t = TextTable::new(
        title,
        vec![
            "P", "T", "Side Ch.", "Overall", "c_disp", "h_dist", "v_dist",
        ],
    );
    for cell in cells {
        t.push_row(vec![
            cell.printer.to_string(),
            cell.transform.to_string(),
            cell.channel.to_string(),
            cell.outcome.overall.cell(),
            cell.outcome.c_disp.cell(),
            cell.outcome.h_dist.cell(),
            cell.outcome.v_dist.cell(),
        ]);
    }
    t
}

/// Table VIII: NSYNC with DWM.
pub fn table8(g: &GridResults) -> TextTable {
    nsync_table(
        "Table VIII: Detection Results for NSYNC with DWM (FPR / TPR)",
        &g.nsync_dwm,
    )
}

/// Table IX: NSYNC with DTW (spectrograms only).
pub fn table9(g: &GridResults) -> TextTable {
    nsync_table(
        "Table IX: Detection Results for NSYNC with DTW (FPR / TPR)",
        &g.nsync_dtw,
    )
}

/// Average accuracy per IDS (the bars of Fig 12). The raw EPT channel is
/// dropped from the averages exactly as in §VIII-B.
pub fn average_accuracies(g: &GridResults) -> Vec<(String, f64)> {
    fn avg<T>(cells: &[Cell<T>], acc: impl Fn(&T) -> f64) -> f64 {
        let kept: Vec<f64> = cells
            .iter()
            .filter(|c| !(c.channel == SideChannel::Ept && c.transform == Transform::Raw))
            .map(|c| acc(&c.outcome))
            .collect();
        if kept.is_empty() {
            0.0
        } else {
            kept.iter().sum::<f64>() / kept.len() as f64
        }
    }
    let bayens_avg = if g.bayens.is_empty() {
        0.0
    } else {
        g.bayens
            .iter()
            .map(|(_, _, o)| o.overall.accuracy())
            .sum::<f64>()
            / g.bayens.len() as f64
    };
    let belik_avg = if g.belikovetsky.is_empty() {
        0.0
    } else {
        g.belikovetsky
            .iter()
            .map(|(_, r)| r.accuracy())
            .sum::<f64>()
            / g.belikovetsky.len() as f64
    };
    vec![
        ("Moore".into(), avg(&g.moore, |r| r.accuracy())),
        ("Bayens (T)".into(), bayens_avg),
        ("Belikovetsky".into(), belik_avg),
        ("Gao".into(), avg(&g.gao, |r| r.accuracy())),
        (
            "Gatlin (T)".into(),
            avg(&g.gatlin, |o| o.overall.accuracy()),
        ),
        (
            "NSYNC/DTW (T)".into(),
            avg(&g.nsync_dtw, |o| o.overall.accuracy()),
        ),
        (
            "NSYNC/DWM (T)".into(),
            avg(&g.nsync_dwm, |o| o.overall.accuracy()),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_rates(fp: usize, tp: usize) -> Rates {
        Rates {
            fp,
            benign: 10,
            tp,
            malicious: 10,
        }
    }

    fn fake_grid() -> GridResults {
        let mut g = GridResults::default();
        for printer in PrinterModel::both() {
            for channel in SideChannel::kept() {
                for transform in [Transform::Raw, Transform::Spectrogram] {
                    g.moore.push(Cell {
                        printer,
                        channel,
                        transform,
                        outcome: fake_rates(5, 5),
                    });
                    g.gao.push(Cell {
                        printer,
                        channel,
                        transform,
                        outcome: fake_rates(2, 7),
                    });
                    g.nsync_dwm.push(Cell {
                        printer,
                        channel,
                        transform,
                        outcome: NsyncOutcome {
                            overall: fake_rates(0, 10),
                            ..Default::default()
                        },
                    });
                }
            }
            g.bayens.push((
                printer,
                20.0,
                BayensOutcome {
                    overall: fake_rates(9, 10),
                    ..Default::default()
                },
            ));
            g.belikovetsky.push((printer, fake_rates(10, 10)));
        }
        g
    }

    #[test]
    fn tables_render_rows() {
        let g = fake_grid();
        let t5 = table5(&g);
        assert_eq!(t5.rows.len(), 8); // 2 printers x 4 channels
        assert!(t5.render().contains("0.50 / 0.50"));
        let t6 = table6(&g);
        assert_eq!(t6.rows.len(), 4); // 2x bayens + 2x belikovetsky rows
        let t8 = table8(&g);
        assert_eq!(t8.rows.len(), 16);
        assert!(table7(&g).rows.is_empty());
        assert!(table9(&g).rows.is_empty());
    }

    #[test]
    fn averages_order_and_values() {
        let g = fake_grid();
        let avgs = average_accuracies(&g);
        assert_eq!(avgs.len(), 7);
        assert_eq!(avgs[0].0, "Moore");
        assert!((avgs[0].1 - 0.5).abs() < 1e-12);
        assert_eq!(avgs[6].0, "NSYNC/DWM (T)");
        assert!((avgs[6].1 - 1.0).abs() < 1e-12);
        // Belikovetsky: FPR 1.0, TPR 1.0 -> accuracy 0.5.
        assert!((avgs[2].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ept_raw_dropped_from_averages() {
        let mut g = GridResults::default();
        // One EPT raw cell with terrible accuracy; one ACC cell perfect.
        g.nsync_dwm.push(Cell {
            printer: PrinterModel::Um3,
            channel: SideChannel::Ept,
            transform: Transform::Raw,
            outcome: NsyncOutcome {
                overall: fake_rates(10, 0),
                ..Default::default()
            },
        });
        g.nsync_dwm.push(Cell {
            printer: PrinterModel::Um3,
            channel: SideChannel::Acc,
            transform: Transform::Raw,
            outcome: NsyncOutcome {
                overall: fake_rates(0, 10),
                ..Default::default()
            },
        });
        let avgs = average_accuracies(&g);
        let dwm = avgs.iter().find(|(n, _)| n.contains("DWM")).unwrap();
        assert!((dwm.1 - 1.0).abs() < 1e-12, "EPT raw must be excluded");
    }
}
