//! Tables V–IX: the paper's detection-result tables as runnable code.
//!
//! [`crate::engine::run_grid`] computes every registered IDS over every
//! (printer × channel × transform) cell once; the `table*` functions
//! render the published table layouts from those results. Regenerate
//! everything with the `bench` crate's targets or
//! `examples/reproduce_tables.rs`.

use crate::detector::{DetectorKind, SubModuleId};
use crate::engine::{GridCell, GridResults};
use crate::harness::{EvalError, Transform};
use crate::report::TextTable;
use am_dataset::{ExperimentSpec, TrajectorySet};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;

pub use crate::engine::{run_grid, run_grid_with, EngineConfig};

/// All prepared experiments (one [`TrajectorySet`] per printer).
pub struct TableContext {
    /// One set per printer.
    pub sets: Vec<TrajectorySet>,
}

impl TableContext {
    /// Generates the Small-profile experiments for both printers.
    ///
    /// # Errors
    ///
    /// Propagates dataset generation failures.
    pub fn small() -> Result<Self, EvalError> {
        let mut sets = Vec::new();
        for printer in PrinterModel::both() {
            sets.push(TrajectorySet::generate(ExperimentSpec::small(printer))?);
        }
        Ok(TableContext { sets })
    }

    /// Wraps pre-generated sets.
    pub fn from_sets(sets: Vec<TrajectorySet>) -> Self {
        TableContext { sets }
    }
}

/// Table V: Moore's and Gao's IDSs.
pub fn table5(g: &GridResults) -> TextTable {
    let mut t = TextTable::new(
        "Table V: Results for Moore's and Gao's IDSs (FPR / TPR)",
        vec![
            "P",
            "Side Ch.",
            "Moore Raw",
            "Moore Spectro.",
            "Gao Raw",
            "Gao Spectro.",
        ],
    );
    for printer in PrinterModel::both() {
        for channel in SideChannel::kept() {
            let find = |kind: DetectorKind, tr: Transform| {
                g.get(kind, printer, channel, tr)
                    .map(|c| c.outcome.overall.cell())
                    .unwrap_or_else(|| "-".into())
            };
            t.push_row(vec![
                printer.to_string(),
                channel.to_string(),
                find(DetectorKind::Moore, Transform::Raw),
                find(DetectorKind::Moore, Transform::Spectrogram),
                find(DetectorKind::Gao, Transform::Raw),
                find(DetectorKind::Gao, Transform::Spectrogram),
            ]);
        }
    }
    t
}

/// Table VI: Bayens' IDS (plus the Belikovetsky single-row result the
/// paper reports in §VIII-C prose).
pub fn table6(g: &GridResults) -> TextTable {
    let mut t = TextTable::new(
        "Table VI: Detection Results for Bayens' IDS (AUD only; FPR / TPR)",
        vec!["Printer", "Window (s)", "Overall", "Sequence", "Threshold"],
    );
    for cell in g.kind_cells(DetectorKind::Bayens) {
        let window = cell.spec.window_s.unwrap_or_default();
        t.push_row(vec![
            cell.printer.to_string(),
            format!("{window}"),
            cell.outcome.overall.cell(),
            cell.outcome.sub(SubModuleId::Sequence).cell(),
            cell.outcome.sub(SubModuleId::Threshold).cell(),
        ]);
    }
    for cell in g.kind_cells(DetectorKind::Belikovetsky) {
        t.push_row(vec![
            cell.printer.to_string(),
            "Belikovetsky".into(),
            cell.outcome.overall.cell(),
            "-".into(),
            "-".into(),
        ]);
    }
    t
}

/// Table VII: Gatlin's IDS.
pub fn table7(g: &GridResults) -> TextTable {
    let mut t = TextTable::new(
        "Table VII: Detection Results for Gatlin's IDS (FPR / TPR)",
        vec!["Printer", "Side Ch.", "Overall", "Time", "Match"],
    );
    for cell in g.kind_cells(DetectorKind::Gatlin) {
        t.push_row(vec![
            cell.printer.to_string(),
            cell.channel.to_string(),
            cell.outcome.overall.cell(),
            cell.outcome.sub(SubModuleId::Time).cell(),
            cell.outcome.sub(SubModuleId::Match).cell(),
        ]);
    }
    t
}

fn nsync_table<'a>(title: &str, cells: impl Iterator<Item = &'a GridCell>) -> TextTable {
    let mut t = TextTable::new(
        title,
        vec![
            "P", "T", "Side Ch.", "Overall", "c_disp", "h_dist", "v_dist",
        ],
    );
    for cell in cells {
        t.push_row(vec![
            cell.printer.to_string(),
            cell.transform.to_string(),
            cell.channel.to_string(),
            cell.outcome.overall.cell(),
            cell.outcome.sub(SubModuleId::CDisp).cell(),
            cell.outcome.sub(SubModuleId::HDist).cell(),
            cell.outcome.sub(SubModuleId::VDist).cell(),
        ]);
    }
    t
}

/// Table VIII: NSYNC with DWM.
pub fn table8(g: &GridResults) -> TextTable {
    nsync_table(
        "Table VIII: Detection Results for NSYNC with DWM (FPR / TPR)",
        g.kind_cells(DetectorKind::NsyncDwm),
    )
}

/// Table IX: NSYNC with DTW (spectrograms only).
pub fn table9(g: &GridResults) -> TextTable {
    nsync_table(
        "Table IX: Detection Results for NSYNC with DTW (FPR / TPR)",
        g.kind_cells(DetectorKind::NsyncDtw),
    )
}

/// Fig 12's fixed bar order.
const FIG12_ORDER: [DetectorKind; 7] = [
    DetectorKind::Moore,
    DetectorKind::Bayens,
    DetectorKind::Belikovetsky,
    DetectorKind::Gao,
    DetectorKind::Gatlin,
    DetectorKind::NsyncDtw,
    DetectorKind::NsyncDwm,
];

/// Average accuracy per IDS (the bars of Fig 12). The raw EPT channel is
/// dropped from the averages exactly as in §VIII-B.
pub fn average_accuracies(g: &GridResults) -> Vec<(String, f64)> {
    FIG12_ORDER
        .iter()
        .map(|&kind| {
            let kept: Vec<f64> = g
                .kind_cells(kind)
                .filter(|c| !(c.channel == SideChannel::Ept && c.transform == Transform::Raw))
                .map(|c| c.outcome.overall.accuracy())
                .collect();
            let avg = if kept.is_empty() {
                0.0
            } else {
                kept.iter().sum::<f64>() / kept.len() as f64
            };
            (kind.fig12_label().to_string(), avg)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorSpec;
    use crate::engine::Outcome;
    use crate::metrics::Rates;

    fn fake_rates(fp: usize, tp: usize) -> Rates {
        Rates {
            fp,
            benign: 10,
            tp,
            malicious: 10,
        }
    }

    fn push(
        g: &mut GridResults,
        spec: DetectorSpec,
        printer: PrinterModel,
        channel: SideChannel,
        transform: Transform,
        outcome: Outcome,
    ) {
        g.cells.push(GridCell {
            spec,
            printer,
            channel,
            transform,
            outcome,
        });
    }

    fn overall(rates: Rates) -> Outcome {
        Outcome {
            overall: rates,
            sub_modules: Vec::new(),
        }
    }

    fn fake_grid() -> GridResults {
        let mut g = GridResults::default();
        for printer in PrinterModel::both() {
            for channel in SideChannel::kept() {
                for transform in Transform::both() {
                    push(
                        &mut g,
                        DetectorSpec::of(DetectorKind::Moore),
                        printer,
                        channel,
                        transform,
                        overall(fake_rates(5, 5)),
                    );
                    push(
                        &mut g,
                        DetectorSpec::of(DetectorKind::Gao),
                        printer,
                        channel,
                        transform,
                        overall(fake_rates(2, 7)),
                    );
                    push(
                        &mut g,
                        DetectorSpec::of(DetectorKind::NsyncDwm),
                        printer,
                        channel,
                        transform,
                        overall(fake_rates(0, 10)),
                    );
                }
            }
            push(
                &mut g,
                DetectorSpec {
                    kind: DetectorKind::Bayens,
                    window_s: Some(20.0),
                },
                printer,
                SideChannel::Aud,
                Transform::Raw,
                overall(fake_rates(9, 10)),
            );
            push(
                &mut g,
                DetectorSpec::of(DetectorKind::Belikovetsky),
                printer,
                SideChannel::Aud,
                Transform::Spectrogram,
                overall(fake_rates(10, 10)),
            );
        }
        g
    }

    #[test]
    fn tables_render_rows() {
        let g = fake_grid();
        let t5 = table5(&g);
        assert_eq!(t5.rows.len(), 8); // 2 printers x 4 channels
        assert!(t5.render().contains("0.50 / 0.50"));
        let t6 = table6(&g);
        assert_eq!(t6.rows.len(), 4); // 2x bayens + 2x belikovetsky rows
        assert!(t6.render().contains("20"));
        let t8 = table8(&g);
        assert_eq!(t8.rows.len(), 16);
        assert!(table7(&g).rows.is_empty());
        assert!(table9(&g).rows.is_empty());
    }

    #[test]
    fn averages_order_and_values() {
        let g = fake_grid();
        let avgs = average_accuracies(&g);
        assert_eq!(avgs.len(), 7);
        assert_eq!(avgs[0].0, "Moore");
        assert!((avgs[0].1 - 0.5).abs() < 1e-12);
        assert_eq!(avgs[6].0, "NSYNC/DWM (T)");
        assert!((avgs[6].1 - 1.0).abs() < 1e-12);
        // Belikovetsky: FPR 1.0, TPR 1.0 -> accuracy 0.5.
        assert!((avgs[2].1 - 0.5).abs() < 1e-12);
        // Gatlin has no cells in the fake grid: average reported as 0.
        assert!((avgs[4].1 - 0.0).abs() < 1e-12);
    }

    #[test]
    fn ept_raw_dropped_from_averages() {
        let mut g = GridResults::default();
        // One EPT raw cell with terrible accuracy; one ACC cell perfect.
        push(
            &mut g,
            DetectorSpec::of(DetectorKind::NsyncDwm),
            PrinterModel::Um3,
            SideChannel::Ept,
            Transform::Raw,
            overall(fake_rates(10, 0)),
        );
        push(
            &mut g,
            DetectorSpec::of(DetectorKind::NsyncDwm),
            PrinterModel::Um3,
            SideChannel::Acc,
            Transform::Raw,
            overall(fake_rates(0, 10)),
        );
        let avgs = average_accuracies(&g);
        let dwm = avgs.iter().find(|(n, _)| n.contains("DWM")).unwrap();
        assert!((dwm.1 - 1.0).abs() < 1e-12, "EPT raw must be excluded");
    }
}
