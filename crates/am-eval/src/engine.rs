//! The stage-aware parallel evaluation engine: one work-list of grid
//! cells, one driver for all seven IDSs.
//!
//! A *cell* is (detector spec × printer × channel × transform). The
//! engine expands the [`crate::detector::DetectorSpec::registry`] against
//! each detector's [`crate::detector::Constraints`] into a deterministic
//! work list and runs it as an explicit three-stage DAG per printer set:
//!
//! 1. **Capture prewarm** — every (channel × transform) artifact the
//!    work list needs is generated into the [`CaptureStore`], exactly
//!    once per key. This is the *only* stage that parallelizes inside an
//!    item (across the runs of one artifact).
//! 2. **Shared fit** — the distinct [`FitKey`]s of the work list are
//!    fitted on a worker pool into the [`FitStore`]; cells that share a
//!    key share one trained detector behind an `Arc`.
//! 3. **Judge** — every cell looks its detector up (a pure cache hit)
//!    and scores the split's test runs.
//!
//! Stage bodies fetch captures and detectors through hit-only accessors
//! ([`CaptureStore::cached`] / [`FitStore::cached`]), so a cell body
//! *structurally cannot* trigger nested generation parallelism. Each
//! stage worker owns a pinned [`SyncArena`]: synchronizer scratch and
//! FFT-plan lookups are reused across every item the worker runs, and a
//! `grid.worker{i}` span covers its lifetime in Chrome traces. Results
//! are returned in work-list order, so [`GridResults`] is byte-identical
//! regardless of thread count or fit sharing
//! ([`EngineConfig::share_fits`]).

use crate::detector::{DetectorSpec, Verdict};
use crate::fitstore::{FitKey, FitStore, SharedDetector};
use crate::harness::{to_run_data, EvalError, Split};
use crate::metrics::Rates;
use crate::tables::TableContext;
use am_dataset::generate::parallel_map_with_worker_state;
use am_dataset::{CaptureStats, CaptureStore, Profile, Transform};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sync::SyncArena;
use std::sync::Arc;

pub use crate::detector::{Constraints, Detector, DetectorKind, SubModuleId};

/// One detector's aggregate result on one cell: overall rates plus the
/// per-sub-module breakdown the tables report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Outcome {
    /// The IDS's top-level decision rates.
    pub overall: Rates,
    /// Per-sub-module rates, in the IDS's fixed reporting order.
    pub sub_modules: Vec<(SubModuleId, Rates)>,
}

impl Outcome {
    /// Folds one verdict into the tallies.
    pub fn record(&mut self, malicious: bool, verdict: &Verdict) {
        self.overall.record(malicious, verdict.intrusion);
        for &(id, fired) in &verdict.sub_modules {
            match self.sub_modules.iter_mut().find(|(m, _)| *m == id) {
                Some((_, r)) => r.record(malicious, fired),
                None => {
                    let mut r = Rates::default();
                    r.record(malicious, fired);
                    self.sub_modules.push((id, r));
                }
            }
        }
    }

    /// Rates of one sub-module (zero if the IDS never reported it).
    pub fn sub(&self, id: SubModuleId) -> Rates {
        self.sub_modules
            .iter()
            .find(|(m, _)| *m == id)
            .map(|(_, r)| *r)
            .unwrap_or_default()
    }
}

/// One evaluated cell of the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Which detector (with parameters).
    pub spec: DetectorSpec,
    /// Printer.
    pub printer: PrinterModel,
    /// Side channel.
    pub channel: SideChannel,
    /// Raw or spectrogram.
    pub transform: Transform,
    /// The detector's rates on this cell.
    pub outcome: Outcome,
}

/// Everything §VIII measures, computed once, in deterministic cell order
/// (printer → registry → channel → transform).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GridResults {
    /// All evaluated cells.
    pub cells: Vec<GridCell>,
}

impl GridResults {
    /// Cells of one detector kind (all parameterizations), in grid order.
    pub fn kind_cells(&self, kind: DetectorKind) -> impl Iterator<Item = &GridCell> {
        self.cells.iter().filter(move |c| c.spec.kind == kind)
    }

    /// The first cell matching a full key (`window` disambiguates Bayens).
    pub fn get(
        &self,
        kind: DetectorKind,
        printer: PrinterModel,
        channel: SideChannel,
        transform: Transform,
    ) -> Option<&GridCell> {
        self.cells.iter().find(|c| {
            c.spec.kind == kind
                && c.printer == printer
                && c.channel == channel
                && c.transform == transform
        })
    }
}

/// Timings of one shared fit (reported, never compared — timings live
/// outside [`GridResults`] so determinism checks stay byte-exact).
#[derive(Debug, Clone)]
pub struct FitTiming {
    /// Detector label (window-qualified for Bayens).
    pub label: String,
    /// Printer.
    pub printer: PrinterModel,
    /// Side channel of the training split.
    pub channel: SideChannel,
    /// Raw or spectrogram.
    pub transform: Transform,
    /// CPU seconds the fit burned, measured with the worker thread's CPU
    /// clock ([`am_telemetry::thread_cpu_time`]) — preemption does not
    /// inflate it, so values are comparable across thread counts.
    pub seconds: f64,
    /// Wall-clock start/end of the fit, seconds since the grid run began
    /// — kept so per-stage wall time can be reconstructed as an interval
    /// union across concurrently running workers.
    pub interval: (f64, f64),
}

/// Timings of one evaluated cell's judge stage (its fit is a
/// [`FitTiming`] — shared fits are not attributable to a single cell).
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// Detector label (window-qualified for Bayens).
    pub label: String,
    /// Printer.
    pub printer: PrinterModel,
    /// Side channel.
    pub channel: SideChannel,
    /// Raw or spectrogram.
    pub transform: Transform,
    /// CPU seconds spent judging the test runs (thread-CPU clock, like
    /// [`FitTiming::seconds`]).
    pub judge_seconds: f64,
    /// Wall-clock start/end of the judge stage, seconds since the grid
    /// run began.
    pub judge_interval: (f64, f64),
}

/// Seconds during which at least one of `intervals` is active (the
/// interval-union sweep). With one worker this equals the plain sum; with
/// N workers it is the true wall-clock the stage occupied.
fn union_seconds(intervals: impl Iterator<Item = (f64, f64)>) -> f64 {
    let mut spans: Vec<(f64, f64)> = intervals.filter(|(s, e)| e > s).collect();
    spans.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut current: Option<(f64, f64)> = None;
    for (start, end) in spans {
        match &mut current {
            Some((_, cur_end)) if start <= *cur_end => *cur_end = cur_end.max(end),
            _ => {
                if let Some((s, e)) = current.replace((start, end)) {
                    total += e - s;
                }
            }
        }
    }
    if let Some((s, e)) = current {
        total += e - s;
    }
    total
}

/// Engine-level measurements for one grid run.
#[derive(Debug, Clone, Default)]
pub struct GridReport {
    /// End-to-end wall-clock seconds.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Seconds spent pre-warming capture stores before cell evaluation
    /// (included in `wall_seconds`). During this phase generation
    /// parallelizes across the runs *inside* each artifact; the cell
    /// phase then runs against a read-only cache.
    pub prewarm_seconds: f64,
    /// Capture-store counters, merged over all printers. With pre-warming
    /// `capture.blocked_seconds()` stays near zero; before this engine
    /// existed, workers faulting captures in on demand serialized on the
    /// store's slot locks.
    pub capture: CaptureStats,
    /// [`FitStore`] counters, merged over all printers. With fit sharing
    /// on, `misses` counts distinct fit keys (one training each) and
    /// `hits` the judge-stage lookups; `blocked_seconds()` is time
    /// workers spent waiting behind another worker's fit of the same key.
    /// All zero when [`EngineConfig::share_fits`] is off.
    pub fit_store: CaptureStats,
    /// Per-fit timings: one entry per distinct fit key with sharing on
    /// (stage order), one per cell with sharing off (grid order).
    pub fits: Vec<FitTiming>,
    /// Per-cell judge timings, in grid order.
    pub cells: Vec<CellTiming>,
    /// Kernel dispatch label active for this run (`am_dsp::simd`), e.g.
    /// `"bit-stable"` or `"avx2"`. Recorded so persisted benchmark
    /// reports are never compared across different kernel backends.
    pub simd_backend: String,
}

impl GridReport {
    /// CPU seconds spent fitting detectors, summed across workers. Each
    /// term is a thread-CPU measurement, so oversubscribed runs don't
    /// inflate it and values are comparable across thread counts — with
    /// fit sharing, it *shrinks* to one training per distinct fit key.
    pub fn fit_cpu_seconds(&self) -> f64 {
        self.fits.iter().map(|f| f.seconds).sum()
    }

    /// CPU seconds spent judging test runs (summed across workers, like
    /// [`GridReport::fit_cpu_seconds`]).
    pub fn judge_cpu_seconds(&self) -> f64 {
        self.cells.iter().map(|c| c.judge_seconds).sum()
    }

    /// Wall-clock seconds during which at least one worker was fitting —
    /// the interval union of every fit. Bounded by
    /// [`GridReport::wall_seconds`] at any thread count.
    pub fn fit_wall_seconds(&self) -> f64 {
        union_seconds(self.fits.iter().map(|f| f.interval))
    }

    /// Wall-clock seconds during which at least one worker was judging.
    pub fn judge_wall_seconds(&self) -> f64 {
        union_seconds(self.cells.iter().map(|c| c.judge_interval))
    }
}

/// How the engine schedules work.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads; `None` consults `AM_EVAL_THREADS`, then the
    /// machine's available parallelism.
    pub threads: Option<usize>,
    /// Hoist fits into the shared-fit stage (`true`, the default) so
    /// cells with equal [`FitKey`]s train once. `false` re-fits inside
    /// every cell — the pre-stage execution model, kept as the A/B arm
    /// of the sharing-is-inert test (results are byte-identical either
    /// way; only the schedule and the fit counters differ).
    pub share_fits: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: None,
            share_fits: true,
        }
    }
}

impl EngineConfig {
    /// A config pinned to an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig {
            threads: Some(threads),
            ..EngineConfig::default()
        }
    }

    /// This config with fit sharing disabled (fits run inside cells).
    pub fn without_fit_sharing(mut self) -> Self {
        self.share_fits = false;
        self
    }

    /// Resolves the effective worker count.
    pub fn resolve_threads(&self) -> usize {
        if let Some(t) = self.threads {
            return t.max(1);
        }
        if let Some(t) = std::env::var("AM_EVAL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return t.max(1);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Trains one detector spec on a split and judges every test run.
///
/// This is the single evaluation driver behind every grid cell (and the
/// per-IDS bench targets).
///
/// # Errors
///
/// Propagates training and detection failures.
pub fn evaluate_split(
    spec: &DetectorSpec,
    profile: Profile,
    printer: PrinterModel,
    split: &Split,
) -> Result<Outcome, EvalError> {
    let mut detector = spec.build(profile, printer);
    let reference = to_run_data(&split.reference);
    let train: Vec<_> = split.train.iter().map(|c| to_run_data(c)).collect();
    {
        let _fit_span = am_telemetry::span!("grid.fit");
        detector.fit(&reference, &train)?;
    }
    let _judge_span = am_telemetry::span!("grid.judge");
    let mut outcome = Outcome::default();
    for test in &split.tests {
        let verdict = detector.judge(&to_run_data(test))?;
        outcome.record(!test.role.is_benign(), &verdict);
    }
    Ok(outcome)
}

/// Returns a deterministic permutation of `work` indices that round-robins
/// across capture keys: consecutive scheduled cells request different
/// (channel × transform) artifacts whenever more than one key remains, so
/// concurrent workers touch distinct captures instead of piling onto the
/// same slot.
fn interleave_by_capture_key(work: &[(DetectorSpec, SideChannel, Transform)]) -> Vec<usize> {
    let mut groups: Vec<((SideChannel, Transform), Vec<usize>)> = Vec::new();
    for (i, &(_, channel, transform)) in work.iter().enumerate() {
        let key = (channel, transform);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(i),
            None => groups.push((key, vec![i])),
        }
    }
    let mut order = Vec::with_capacity(work.len());
    let mut round = 0;
    loop {
        let before = order.len();
        for (_, members) in &groups {
            if let Some(&i) = members.get(round) {
                order.push(i);
            }
        }
        if order.len() == before {
            break;
        }
        round += 1;
    }
    order
}

/// Runs the full evaluation grid with the default configuration. This is
/// the expensive call; everything downstream (tables, Fig 12) renders
/// from the returned struct.
///
/// # Errors
///
/// Propagates capture and IDS failures.
pub fn run_grid(ctx: &TableContext) -> Result<GridResults, EvalError> {
    run_grid_with(ctx, &EngineConfig::default()).map(|(g, _)| g)
}

/// One stage worker's pinned context: a scratch arena reused across
/// every item the worker runs (synchronizer scratch reaches steady-state
/// zero allocation after the first item), plus a `grid.worker{i}` span
/// covering the worker's lifetime in Chrome traces — one lane per
/// worker per stage, so a trace shows exactly how the stage spread over
/// the pool.
struct WorkerCtx {
    arena: SyncArena,
    _span: am_telemetry::SpanGuard,
}

impl WorkerCtx {
    fn new(worker: usize) -> WorkerCtx {
        WorkerCtx {
            arena: SyncArena::new(),
            _span: am_telemetry::start_span(&format!("grid.worker{worker}")),
        }
    }
}

/// A split over already-warmed captures. Stage bodies run *inside* a
/// worker pool, so they must never generate (nested parallelism) — this
/// goes through the hit-only [`CaptureStore::cached`], making a missed
/// pre-warm a loud invariant violation instead of a silent stall.
fn warmed_split(
    store: &CaptureStore,
    channel: SideChannel,
    transform: Transform,
) -> Result<Split, EvalError> {
    let captures = store
        .cached(channel, transform)
        .expect("stage bodies run against a fully pre-warmed capture store");
    Split::from_shared(&captures)
}

/// [`run_grid`] with explicit configuration, also returning timing and
/// cache measurements.
///
/// # Errors
///
/// Propagates capture and IDS failures.
pub fn run_grid_with(
    ctx: &TableContext,
    config: &EngineConfig,
) -> Result<(GridResults, GridReport), EvalError> {
    let _run_span = am_telemetry::span!("grid.run");
    let t0 = std::time::Instant::now();
    let offset = move |at: std::time::Instant| at.duration_since(t0).as_secs_f64();
    let threads = config.resolve_threads();
    let mut grid = GridResults::default();
    let mut report = GridReport {
        threads,
        simd_backend: am_dsp::simd::active().label().to_string(),
        ..GridReport::default()
    };
    for set in &ctx.sets {
        let printer = set.spec.printer;
        let profile = set.spec.profile;
        let store = CaptureStore::with_threads(set, threads);
        let work: Vec<(DetectorSpec, SideChannel, Transform)> = DetectorSpec::registry(profile)
            .into_iter()
            .flat_map(|spec| {
                let constraints = spec.kind.constraints();
                constraints
                    .channels()
                    .into_iter()
                    .flat_map(move |channel| {
                        constraints
                            .transforms()
                            .into_iter()
                            .map(move |transform| (spec, channel, transform))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        // Stage 1: pre-warm every capture the later stages will request.
        // Generation parallelizes across the runs inside each artifact;
        // this is the only stage allowed to parallelize inside an item
        // (the fit/judge stages fetch via the hit-only `cached()` path).
        let keys: Vec<(SideChannel, Transform)> = work.iter().map(|&(_, c, t)| (c, t)).collect();
        let t_warm = std::time::Instant::now();
        {
            let _span = am_telemetry::span!("grid.prewarm");
            store.prewarm(&keys)?;
        }
        report.prewarm_seconds += t_warm.elapsed().as_secs_f64();
        // Stage 2: fit the distinct fit keys once each, on the pool. The
        // key list keeps first-appearance (work-list) order, so the fits
        // vector is deterministic.
        let mut fit_keys: Vec<FitKey> = Vec::new();
        for &(spec, channel, transform) in &work {
            let key = FitKey::for_cell(spec, printer, channel, transform);
            if !fit_keys.contains(&key) {
                fit_keys.push(key);
            }
        }
        let fit_store = FitStore::new(fit_keys.iter().copied());
        if config.share_fits {
            let fitted = parallel_map_with_worker_state(
                &fit_keys,
                threads,
                WorkerCtx::new,
                |worker, (_, key)| {
                    let _span = am_telemetry::span!("grid.fit");
                    let split = warmed_split(&store, key.channel, key.transform)?;
                    let reference = to_run_data(&split.reference);
                    let train: Vec<_> = split.train.iter().map(|c| to_run_data(c)).collect();
                    let wall_start = std::time::Instant::now();
                    let cpu_start = am_telemetry::thread_cpu_time();
                    fit_store.get_or_fit(key, || {
                        let mut detector = key.spec.build(profile, printer);
                        detector.fit_with(&reference, &train, &mut worker.arena)?;
                        Ok::<_, EvalError>(Arc::from(detector) as SharedDetector)
                    })?;
                    let cpu = am_telemetry::thread_cpu_time() - cpu_start;
                    let wall_end = std::time::Instant::now();
                    Ok::<_, EvalError>(FitTiming {
                        label: key.spec.label(),
                        printer: key.printer,
                        channel: key.channel,
                        transform: key.transform,
                        seconds: cpu.as_secs_f64(),
                        interval: (offset(wall_start), offset(wall_end)),
                    })
                },
            );
            for timing in fitted {
                report.fits.push(timing?);
            }
        }
        // Stage 3: judge, in a capture-interleaved order so concurrently
        // running cells touch distinct store slots, then scatter results
        // back to canonical work-list order (the GridResults contract).
        let order = interleave_by_capture_key(&work);
        let scheduled: Vec<(DetectorSpec, SideChannel, Transform)> =
            order.iter().map(|&i| work[i]).collect();
        let evaluated = parallel_map_with_worker_state(
            &scheduled,
            threads,
            WorkerCtx::new,
            |worker, (_, cell)| {
                let _span = am_telemetry::span!("grid.cell");
                let (spec, channel, transform) = *cell;
                let split = warmed_split(&store, channel, transform)?;
                let key = FitKey::for_cell(spec, printer, channel, transform);
                let (detector, inline_fit) = if config.share_fits {
                    let detector = fit_store
                        .cached(&key)
                        .expect("the fit stage populated every fit key");
                    (detector, None)
                } else {
                    // Sharing disabled: re-fit inside the cell (the A/B
                    // arm of the sharing-is-inert test).
                    let reference = to_run_data(&split.reference);
                    let train: Vec<_> = split.train.iter().map(|c| to_run_data(c)).collect();
                    let wall_start = std::time::Instant::now();
                    let cpu_start = am_telemetry::thread_cpu_time();
                    let mut detector = spec.build(profile, printer);
                    {
                        let _fit_span = am_telemetry::span!("grid.fit");
                        detector.fit_with(&reference, &train, &mut worker.arena)?;
                    }
                    let cpu = am_telemetry::thread_cpu_time() - cpu_start;
                    let wall_end = std::time::Instant::now();
                    let timing = FitTiming {
                        label: spec.label(),
                        printer,
                        channel,
                        transform,
                        seconds: cpu.as_secs_f64(),
                        interval: (offset(wall_start), offset(wall_end)),
                    };
                    (Arc::from(detector) as SharedDetector, Some(timing))
                };
                let wall_start = std::time::Instant::now();
                let cpu_start = am_telemetry::thread_cpu_time();
                let mut outcome = Outcome::default();
                {
                    let _judge_span = am_telemetry::span!("grid.judge");
                    for test in &split.tests {
                        let verdict = detector.judge_with(&to_run_data(test), &mut worker.arena)?;
                        outcome.record(!test.role.is_benign(), &verdict);
                    }
                }
                let cpu = am_telemetry::thread_cpu_time() - cpu_start;
                let wall_end = std::time::Instant::now();
                Ok::<_, EvalError>((
                    GridCell {
                        spec,
                        printer,
                        channel,
                        transform,
                        outcome,
                    },
                    CellTiming {
                        label: spec.label(),
                        printer,
                        channel,
                        transform,
                        judge_seconds: cpu.as_secs_f64(),
                        judge_interval: (offset(wall_start), offset(wall_end)),
                    },
                    inline_fit,
                ))
            },
        );
        let _scatter_span = am_telemetry::span!("grid.scatter");
        // A judged cell, its timing, and (only when sharing is off) the
        // inline fit that produced its detector.
        type JudgedCell = Result<(GridCell, CellTiming, Option<FitTiming>), EvalError>;
        let mut slots: Vec<Option<JudgedCell>> = (0..work.len()).map(|_| None).collect();
        for (k, result) in evaluated.into_iter().enumerate() {
            slots[order[k]] = Some(result);
        }
        for slot in slots {
            let (cell, timing, inline_fit) =
                slot.expect("order is a permutation of the work list")?;
            grid.cells.push(cell);
            report.cells.push(timing);
            if let Some(fit) = inline_fit {
                report.fits.push(fit);
            }
        }
        drop(_scatter_span);
        report.capture.merge(&store.stats());
        report.fit_store.merge(&fit_store.stats());
    }
    report.wall_seconds = t0.elapsed().as_secs_f64();
    Ok((grid, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_dataset::spec::ProcessMix;
    use am_dataset::{ExperimentSpec, TrajectorySet};

    fn tiny_ctx() -> TableContext {
        TableContext::from_sets(vec![TrajectorySet::generate_with_mix(
            ExperimentSpec::small(PrinterModel::Um3),
            ProcessMix {
                train: 3,
                test_benign: 2,
                malicious_per_attack: 1,
            },
        )
        .unwrap()])
    }

    #[test]
    fn grid_covers_every_constrained_cell_exactly_once() {
        let ctx = tiny_ctx();
        let (grid, report) = run_grid_with(&ctx, &EngineConfig::with_threads(2)).unwrap();
        // Moore 8 + Gao 8 + Gatlin 4 + Bayens 2x1 + Belikovetsky 1 +
        // DWM 8 + DTW 4 = 35 cells for one printer.
        assert_eq!(grid.cells.len(), 35);
        assert_eq!(report.cells.len(), 35);
        assert_eq!(grid.kind_cells(DetectorKind::Moore).count(), 8);
        assert_eq!(grid.kind_cells(DetectorKind::Gatlin).count(), 4);
        assert_eq!(grid.kind_cells(DetectorKind::Bayens).count(), 2);
        assert_eq!(grid.kind_cells(DetectorKind::NsyncDtw).count(), 4);
        assert!(grid
            .kind_cells(DetectorKind::Gatlin)
            .all(|c| c.transform == Transform::Raw));
        assert!(grid
            .kind_cells(DetectorKind::Bayens)
            .all(|c| c.channel == SideChannel::Aud));
        // Each (channel x transform) artifact was generated exactly once.
        assert_eq!(report.capture.misses, 8);
        assert!(report.capture.hits > report.capture.misses);
        // Every cell has a distinct fit key today, fitted once in the fit
        // stage (misses) and looked up once per cell in the judge stage
        // (hits).
        assert_eq!(report.fits.len(), 35);
        assert_eq!(report.fit_store.misses, 35);
        assert_eq!(report.fit_store.hits, 35);
        assert!(report.wall_seconds > 0.0);
        assert!(report.fit_cpu_seconds() > 0.0);
        assert!(report.judge_cpu_seconds() > 0.0);
        // Wall per stage is an interval union: positive and bounded by
        // the run's wall-clock. (CPU seconds are thread-CPU time, so no
        // fixed order holds between a stage's wall and CPU totals.)
        assert!(report.fit_wall_seconds() > 0.0);
        assert!(report.judge_wall_seconds() > 0.0);
        assert!(report.fit_wall_seconds() <= report.wall_seconds);
        assert!(report.judge_wall_seconds() <= report.wall_seconds);
        // Every outcome judged the full test mix.
        for cell in &grid.cells {
            assert_eq!(
                cell.outcome.overall.benign + cell.outcome.overall.malicious,
                7
            );
        }
        let cell = grid
            .get(
                DetectorKind::NsyncDwm,
                PrinterModel::Um3,
                SideChannel::Mag,
                Transform::Raw,
            )
            .unwrap();
        assert_eq!(cell.outcome.sub_modules.len(), 3);
    }

    #[test]
    fn interleave_is_a_key_alternating_permutation() {
        let spec = DetectorSpec::registry(am_dataset::Profile::Small)[0];
        let work: Vec<(DetectorSpec, SideChannel, Transform)> = [
            (SideChannel::Mag, Transform::Raw),
            (SideChannel::Mag, Transform::Raw),
            (SideChannel::Mag, Transform::Spectrogram),
            (SideChannel::Acc, Transform::Raw),
            (SideChannel::Acc, Transform::Raw),
            (SideChannel::Mag, Transform::Raw),
        ]
        .into_iter()
        .map(|(c, t)| (spec, c, t))
        .collect();
        let order = interleave_by_capture_key(&work);
        // A permutation: every index exactly once.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..work.len()).collect::<Vec<_>>());
        // Consecutive scheduled cells alternate keys while several keys
        // still have members (rounds 1 and 2 cover all three keys here).
        let keys: Vec<_> = order.iter().map(|&i| (work[i].1, work[i].2)).collect();
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[1], keys[2]);
        assert_ne!(keys[3], keys[4]);
    }

    #[test]
    fn report_accounts_prewarm_and_blocking() {
        let ctx = tiny_ctx();
        let (_, report) = run_grid_with(&ctx, &EngineConfig::with_threads(2)).unwrap();
        // All generation happens inside the timed pre-warm phase.
        assert!(report.prewarm_seconds > 0.0);
        assert!(report.wall_seconds >= report.prewarm_seconds);
        assert!(
            report.capture.generation_seconds() <= report.prewarm_seconds * 1.5,
            "generation ({:.3}s) should fall within the pre-warm phase ({:.3}s)",
            report.capture.generation_seconds(),
            report.prewarm_seconds
        );
        // Post-warm requests are uncontended cache hits.
        assert!(report.capture.blocked_seconds() < report.wall_seconds);
    }

    #[test]
    fn union_seconds_merges_overlaps() {
        assert_eq!(union_seconds(std::iter::empty()), 0.0);
        // [0,1]+[0.5,2] merge to [0,2]; [3,4]+[4,4.5] chain to [3,4.5];
        // the empty [2.5,2.5] contributes nothing.
        let spans = [(0.0, 1.0), (0.5, 2.0), (3.0, 4.0), (4.0, 4.5), (2.5, 2.5)];
        assert!((union_seconds(spans.iter().copied()) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn single_thread_stage_cpu_is_bounded_by_wall() {
        let ctx = tiny_ctx();
        let (_, report) = run_grid_with(&ctx, &EngineConfig::with_threads(1)).unwrap();
        // One worker cannot burn more CPU in a stage than the wall time
        // the stage occupied (the converse does not hold: preemption
        // stretches wall without adding CPU).
        assert!(report.fit_cpu_seconds() <= report.fit_wall_seconds() * 1.05 + 1e-3);
        assert!(report.judge_cpu_seconds() <= report.judge_wall_seconds() * 1.05 + 1e-3);
        // At one thread the intervals are disjoint, so their union is
        // their sum — which must fit inside the run.
        assert!(report.fit_wall_seconds() + report.judge_wall_seconds() <= report.wall_seconds);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let ctx = tiny_ctx();
        let (one, _) = run_grid_with(&ctx, &EngineConfig::with_threads(1)).unwrap();
        let (four, _) = run_grid_with(&ctx, &EngineConfig::with_threads(4)).unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn fit_sharing_does_not_change_results() {
        let ctx = tiny_ctx();
        let shared = EngineConfig::with_threads(2);
        let inline = EngineConfig::with_threads(2).without_fit_sharing();
        assert!(shared.share_fits && !inline.share_fits);
        let (on, report_on) = run_grid_with(&ctx, &shared).unwrap();
        let (off, report_off) = run_grid_with(&ctx, &inline).unwrap();
        assert_eq!(on, off, "fit sharing changed grid results");
        // Sharing off: the fit store is never consulted, but every cell
        // still reports an inline fit timing (grid order).
        assert_eq!(report_off.fit_store, am_dataset::SlotStats::default());
        assert_eq!(report_off.fits.len(), report_off.cells.len());
        assert!(report_on.fit_store.misses > 0);
    }

    #[test]
    fn config_resolution_prefers_explicit_threads() {
        assert_eq!(EngineConfig::with_threads(0).resolve_threads(), 1);
        assert_eq!(EngineConfig::with_threads(3).resolve_threads(), 3);
        assert!(EngineConfig::default().resolve_threads() >= 1);
    }

    #[test]
    fn outcome_bookkeeping() {
        let mut o = Outcome::default();
        o.record(
            true,
            &Verdict {
                intrusion: true,
                sub_modules: vec![(SubModuleId::Time, true), (SubModuleId::Match, false)],
                first_alert_index: Some(3),
            },
        );
        o.record(false, &Verdict::simple(false));
        assert_eq!(o.overall.tp, 1);
        assert_eq!(o.overall.benign, 1);
        assert_eq!(o.sub(SubModuleId::Time).tp, 1);
        assert_eq!(o.sub(SubModuleId::Match).tp, 0);
        assert_eq!(o.sub(SubModuleId::CDisp), Rates::default());
    }
}
