//! The parallel evaluation engine: one work-list of grid cells, one
//! driver for all seven IDSs.
//!
//! A *cell* is (detector spec × printer × channel × transform). The
//! engine expands the [`crate::detector::DetectorSpec::registry`] against
//! each detector's [`crate::detector::Constraints`] into a deterministic
//! work list, evaluates the cells on a scoped thread pool, and returns
//! them in work-list order — so [`GridResults`] is byte-identical
//! regardless of thread count. Captures are shared through a
//! [`CaptureStore`] per printer: each (channel × transform) artifact is
//! generated once, however many detectors consume it.

use crate::detector::{DetectorSpec, Verdict};
use crate::harness::{to_run_data, EvalError, Split};
use crate::metrics::Rates;
use crate::tables::TableContext;
use am_dataset::generate::parallel_map_with_threads;
use am_dataset::{CaptureStats, CaptureStore, Profile, Transform};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;

pub use crate::detector::{Constraints, Detector, DetectorKind, SubModuleId};

/// One detector's aggregate result on one cell: overall rates plus the
/// per-sub-module breakdown the tables report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Outcome {
    /// The IDS's top-level decision rates.
    pub overall: Rates,
    /// Per-sub-module rates, in the IDS's fixed reporting order.
    pub sub_modules: Vec<(SubModuleId, Rates)>,
}

impl Outcome {
    /// Folds one verdict into the tallies.
    pub fn record(&mut self, malicious: bool, verdict: &Verdict) {
        self.overall.record(malicious, verdict.intrusion);
        for &(id, fired) in &verdict.sub_modules {
            match self.sub_modules.iter_mut().find(|(m, _)| *m == id) {
                Some((_, r)) => r.record(malicious, fired),
                None => {
                    let mut r = Rates::default();
                    r.record(malicious, fired);
                    self.sub_modules.push((id, r));
                }
            }
        }
    }

    /// Rates of one sub-module (zero if the IDS never reported it).
    pub fn sub(&self, id: SubModuleId) -> Rates {
        self.sub_modules
            .iter()
            .find(|(m, _)| *m == id)
            .map(|(_, r)| *r)
            .unwrap_or_default()
    }
}

/// One evaluated cell of the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Which detector (with parameters).
    pub spec: DetectorSpec,
    /// Printer.
    pub printer: PrinterModel,
    /// Side channel.
    pub channel: SideChannel,
    /// Raw or spectrogram.
    pub transform: Transform,
    /// The detector's rates on this cell.
    pub outcome: Outcome,
}

/// Everything §VIII measures, computed once, in deterministic cell order
/// (printer → registry → channel → transform).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GridResults {
    /// All evaluated cells.
    pub cells: Vec<GridCell>,
}

impl GridResults {
    /// Cells of one detector kind (all parameterizations), in grid order.
    pub fn kind_cells(&self, kind: DetectorKind) -> impl Iterator<Item = &GridCell> {
        self.cells.iter().filter(move |c| c.spec.kind == kind)
    }

    /// The first cell matching a full key (`window` disambiguates Bayens).
    pub fn get(
        &self,
        kind: DetectorKind,
        printer: PrinterModel,
        channel: SideChannel,
        transform: Transform,
    ) -> Option<&GridCell> {
        self.cells.iter().find(|c| {
            c.spec.kind == kind
                && c.printer == printer
                && c.channel == channel
                && c.transform == transform
        })
    }
}

/// Wall-clock timings of one evaluated cell (reported, never compared —
/// timings live outside [`GridResults`] so determinism checks stay
/// byte-exact).
#[derive(Debug, Clone)]
pub struct CellTiming {
    /// Detector label (window-qualified for Bayens).
    pub label: String,
    /// Printer.
    pub printer: PrinterModel,
    /// Side channel.
    pub channel: SideChannel,
    /// Raw or spectrogram.
    pub transform: Transform,
    /// CPU seconds spent in `fit` (training, including synchronization),
    /// measured on the worker that ran the cell.
    pub fit_seconds: f64,
    /// CPU seconds spent judging the test runs.
    pub judge_seconds: f64,
    /// Start/end of the fit stage, seconds since the grid run began —
    /// kept so wall-clock per stage can be reconstructed as an interval
    /// union across concurrently running workers.
    pub fit_interval: (f64, f64),
    /// Start/end of the judge stage, seconds since the grid run began.
    pub judge_interval: (f64, f64),
}

/// Seconds during which at least one of `intervals` is active (the
/// interval-union sweep). With one worker this equals the plain sum; with
/// N workers it is the true wall-clock the stage occupied.
fn union_seconds(intervals: impl Iterator<Item = (f64, f64)>) -> f64 {
    let mut spans: Vec<(f64, f64)> = intervals.filter(|(s, e)| e > s).collect();
    spans.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut current: Option<(f64, f64)> = None;
    for (start, end) in spans {
        match &mut current {
            Some((_, cur_end)) if start <= *cur_end => *cur_end = cur_end.max(end),
            _ => {
                if let Some((s, e)) = current.replace((start, end)) {
                    total += e - s;
                }
            }
        }
    }
    if let Some((s, e)) = current {
        total += e - s;
    }
    total
}

/// Engine-level measurements for one grid run.
#[derive(Debug, Clone, Default)]
pub struct GridReport {
    /// End-to-end wall-clock seconds.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Seconds spent pre-warming capture stores before cell evaluation
    /// (included in `wall_seconds`). During this phase generation
    /// parallelizes across the runs *inside* each artifact; the cell
    /// phase then runs against a read-only cache.
    pub prewarm_seconds: f64,
    /// Capture-store counters, merged over all printers. With pre-warming
    /// `capture.blocked_seconds()` stays near zero; before this engine
    /// existed, workers faulting captures in on demand serialized on the
    /// store's slot locks.
    pub capture: CaptureStats,
    /// Per-cell timings, in grid order.
    pub cells: Vec<CellTiming>,
}

impl GridReport {
    /// CPU seconds spent fitting detectors: per-cell stopwatches summed
    /// across all workers, so this *exceeds wall-clock* when threads > 1.
    /// Compare runs at equal thread counts only; use
    /// [`GridReport::fit_wall_seconds`] for elapsed time.
    pub fn fit_cpu_seconds(&self) -> f64 {
        self.cells.iter().map(|c| c.fit_seconds).sum()
    }

    /// CPU seconds spent judging test runs (summed across workers, like
    /// [`GridReport::fit_cpu_seconds`]).
    pub fn judge_cpu_seconds(&self) -> f64 {
        self.cells.iter().map(|c| c.judge_seconds).sum()
    }

    /// Wall-clock seconds during which at least one worker was fitting —
    /// the interval union of every cell's fit stage. Equals
    /// [`GridReport::fit_cpu_seconds`] at one thread; bounded by
    /// [`GridReport::wall_seconds`] at any thread count.
    pub fn fit_wall_seconds(&self) -> f64 {
        union_seconds(self.cells.iter().map(|c| c.fit_interval))
    }

    /// Wall-clock seconds during which at least one worker was judging.
    pub fn judge_wall_seconds(&self) -> f64 {
        union_seconds(self.cells.iter().map(|c| c.judge_interval))
    }

    /// Renamed: this sums per-worker stopwatches, i.e. CPU seconds, not
    /// elapsed time.
    #[deprecated(
        since = "0.1.0",
        note = "use `fit_cpu_seconds` (summed stopwatches) or `fit_wall_seconds` (elapsed)"
    )]
    pub fn fit_seconds(&self) -> f64 {
        self.fit_cpu_seconds()
    }

    /// Renamed: this sums per-worker stopwatches, i.e. CPU seconds, not
    /// elapsed time.
    #[deprecated(
        since = "0.1.0",
        note = "use `judge_cpu_seconds` (summed stopwatches) or `judge_wall_seconds` (elapsed)"
    )]
    pub fn judge_seconds(&self) -> f64 {
        self.judge_cpu_seconds()
    }
}

/// How the engine schedules work.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Worker threads; `None` consults `AM_EVAL_THREADS`, then the
    /// machine's available parallelism.
    pub threads: Option<usize>,
}

impl EngineConfig {
    /// A config pinned to an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig {
            threads: Some(threads),
        }
    }

    /// Resolves the effective worker count.
    pub fn resolve_threads(&self) -> usize {
        if let Some(t) = self.threads {
            return t.max(1);
        }
        if let Some(t) = std::env::var("AM_EVAL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            return t.max(1);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Trains one detector spec on a split and judges every test run.
///
/// This is the single evaluation driver behind every grid cell (and the
/// per-IDS bench targets).
///
/// # Errors
///
/// Propagates training and detection failures.
pub fn evaluate_split(
    spec: &DetectorSpec,
    profile: Profile,
    printer: PrinterModel,
    split: &Split,
) -> Result<Outcome, EvalError> {
    Ok(evaluate_split_timed(spec, profile, printer, split)?.0)
}

/// Worker-side stage stopwatches of one cell, as absolute instants so
/// the engine can express them relative to its own epoch.
struct StageClocks {
    fit_start: std::time::Instant,
    fit_end: std::time::Instant,
    judge_start: std::time::Instant,
    judge_end: std::time::Instant,
}

fn evaluate_split_timed(
    spec: &DetectorSpec,
    profile: Profile,
    printer: PrinterModel,
    split: &Split,
) -> Result<(Outcome, StageClocks), EvalError> {
    let mut detector = spec.build(profile, printer);
    let reference = to_run_data(&split.reference);
    let train: Vec<_> = split.train.iter().map(|c| to_run_data(c)).collect();
    let fit_start = std::time::Instant::now();
    detector.fit(&reference, &train)?;
    let fit_end = std::time::Instant::now();
    let mut outcome = Outcome::default();
    let judge_start = std::time::Instant::now();
    for test in &split.tests {
        let verdict = detector.judge(&to_run_data(test))?;
        outcome.record(!test.role.is_benign(), &verdict);
    }
    let judge_end = std::time::Instant::now();
    // The GridReport stopwatches double as the registry's fit/judge
    // histograms — one clock read, two consumers.
    if am_telemetry::enabled() {
        am_telemetry::histogram("grid.fit").record(fit_end - fit_start);
        am_telemetry::histogram("grid.judge").record(judge_end - judge_start);
    }
    Ok((
        outcome,
        StageClocks {
            fit_start,
            fit_end,
            judge_start,
            judge_end,
        },
    ))
}

/// Returns a deterministic permutation of `work` indices that round-robins
/// across capture keys: consecutive scheduled cells request different
/// (channel × transform) artifacts whenever more than one key remains, so
/// concurrent workers touch distinct captures instead of piling onto the
/// same slot.
fn interleave_by_capture_key(work: &[(DetectorSpec, SideChannel, Transform)]) -> Vec<usize> {
    let mut groups: Vec<((SideChannel, Transform), Vec<usize>)> = Vec::new();
    for (i, &(_, channel, transform)) in work.iter().enumerate() {
        let key = (channel, transform);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(i),
            None => groups.push((key, vec![i])),
        }
    }
    let mut order = Vec::with_capacity(work.len());
    let mut round = 0;
    loop {
        let before = order.len();
        for (_, members) in &groups {
            if let Some(&i) = members.get(round) {
                order.push(i);
            }
        }
        if order.len() == before {
            break;
        }
        round += 1;
    }
    order
}

/// Runs the full evaluation grid with the default configuration. This is
/// the expensive call; everything downstream (tables, Fig 12) renders
/// from the returned struct.
///
/// # Errors
///
/// Propagates capture and IDS failures.
pub fn run_grid(ctx: &TableContext) -> Result<GridResults, EvalError> {
    run_grid_with(ctx, &EngineConfig::default()).map(|(g, _)| g)
}

/// [`run_grid`] with explicit configuration, also returning timing and
/// cache measurements.
///
/// # Errors
///
/// Propagates capture and IDS failures.
pub fn run_grid_with(
    ctx: &TableContext,
    config: &EngineConfig,
) -> Result<(GridResults, GridReport), EvalError> {
    let _run_span = am_telemetry::span!("grid.run");
    let t0 = std::time::Instant::now();
    let threads = config.resolve_threads();
    let mut grid = GridResults::default();
    let mut report = GridReport {
        threads,
        ..GridReport::default()
    };
    for set in &ctx.sets {
        let printer = set.spec.printer;
        let profile = set.spec.profile;
        let store = CaptureStore::with_threads(set, threads);
        let work: Vec<(DetectorSpec, SideChannel, Transform)> = DetectorSpec::registry(profile)
            .into_iter()
            .flat_map(|spec| {
                let constraints = spec.kind.constraints();
                constraints
                    .channels()
                    .into_iter()
                    .flat_map(move |channel| {
                        constraints
                            .transforms()
                            .into_iter()
                            .map(move |transform| (spec, channel, transform))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        // Pre-warm every capture the cells will request. Generation
        // parallelizes across the runs inside each artifact; without this
        // the first requester of a key generated single-threadedly while
        // every other worker wanting that key blocked on its slot lock.
        let keys: Vec<(SideChannel, Transform)> = work.iter().map(|&(_, c, t)| (c, t)).collect();
        let t_warm = std::time::Instant::now();
        {
            let _span = am_telemetry::span!("grid.prewarm");
            store.prewarm(&keys)?;
        }
        report.prewarm_seconds += t_warm.elapsed().as_secs_f64();
        // Evaluate in a capture-interleaved order so concurrently running
        // cells touch distinct artifacts, then scatter results back to
        // canonical work-list order (the GridResults contract).
        let order = interleave_by_capture_key(&work);
        let scheduled: Vec<(DetectorSpec, SideChannel, Transform)> =
            order.iter().map(|&i| work[i]).collect();
        let evaluated = parallel_map_with_threads(&scheduled, threads, |(_, cell)| {
            let _span = am_telemetry::span!("grid.cell");
            let (spec, channel, transform) = *cell;
            let captures = store.get(channel, transform)?;
            let split = Split::from_shared(&captures)?;
            let (outcome, clocks) = evaluate_split_timed(&spec, profile, printer, &split)?;
            let offset = |at: std::time::Instant| at.duration_since(t0).as_secs_f64();
            Ok::<_, EvalError>((
                GridCell {
                    spec,
                    printer,
                    channel,
                    transform,
                    outcome,
                },
                CellTiming {
                    label: spec.label(),
                    printer,
                    channel,
                    transform,
                    fit_seconds: (clocks.fit_end - clocks.fit_start).as_secs_f64(),
                    judge_seconds: (clocks.judge_end - clocks.judge_start).as_secs_f64(),
                    fit_interval: (offset(clocks.fit_start), offset(clocks.fit_end)),
                    judge_interval: (offset(clocks.judge_start), offset(clocks.judge_end)),
                },
            ))
        });
        let _scatter_span = am_telemetry::span!("grid.scatter");
        let mut slots: Vec<Option<Result<(GridCell, CellTiming), EvalError>>> =
            (0..work.len()).map(|_| None).collect();
        for (k, result) in evaluated.into_iter().enumerate() {
            slots[order[k]] = Some(result);
        }
        for slot in slots {
            let (cell, timing) = slot.expect("order is a permutation of the work list")?;
            grid.cells.push(cell);
            report.cells.push(timing);
        }
        drop(_scatter_span);
        report.capture.merge(&store.stats());
    }
    report.wall_seconds = t0.elapsed().as_secs_f64();
    Ok((grid, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_dataset::spec::ProcessMix;
    use am_dataset::{ExperimentSpec, TrajectorySet};

    fn tiny_ctx() -> TableContext {
        TableContext::from_sets(vec![TrajectorySet::generate_with_mix(
            ExperimentSpec::small(PrinterModel::Um3),
            ProcessMix {
                train: 3,
                test_benign: 2,
                malicious_per_attack: 1,
            },
        )
        .unwrap()])
    }

    #[test]
    fn grid_covers_every_constrained_cell_exactly_once() {
        let ctx = tiny_ctx();
        let (grid, report) = run_grid_with(&ctx, &EngineConfig::with_threads(2)).unwrap();
        // Moore 8 + Gao 8 + Gatlin 4 + Bayens 2x1 + Belikovetsky 1 +
        // DWM 8 + DTW 4 = 35 cells for one printer.
        assert_eq!(grid.cells.len(), 35);
        assert_eq!(report.cells.len(), 35);
        assert_eq!(grid.kind_cells(DetectorKind::Moore).count(), 8);
        assert_eq!(grid.kind_cells(DetectorKind::Gatlin).count(), 4);
        assert_eq!(grid.kind_cells(DetectorKind::Bayens).count(), 2);
        assert_eq!(grid.kind_cells(DetectorKind::NsyncDtw).count(), 4);
        assert!(grid
            .kind_cells(DetectorKind::Gatlin)
            .all(|c| c.transform == Transform::Raw));
        assert!(grid
            .kind_cells(DetectorKind::Bayens)
            .all(|c| c.channel == SideChannel::Aud));
        // Each (channel x transform) artifact was generated exactly once.
        assert_eq!(report.capture.misses, 8);
        assert!(report.capture.hits > report.capture.misses);
        assert!(report.wall_seconds > 0.0);
        assert!(report.fit_cpu_seconds() > 0.0);
        assert!(report.judge_cpu_seconds() > 0.0);
        // Wall per stage is an interval union: positive, bounded by the
        // run's wall-clock, and never above the cross-worker CPU sum.
        assert!(report.fit_wall_seconds() > 0.0);
        assert!(report.judge_wall_seconds() > 0.0);
        assert!(report.fit_wall_seconds() <= report.wall_seconds);
        assert!(report.judge_wall_seconds() <= report.wall_seconds);
        assert!(report.fit_wall_seconds() <= report.fit_cpu_seconds() + 1e-9);
        assert!(report.judge_wall_seconds() <= report.judge_cpu_seconds() + 1e-9);
        // Every outcome judged the full test mix.
        for cell in &grid.cells {
            assert_eq!(
                cell.outcome.overall.benign + cell.outcome.overall.malicious,
                7
            );
        }
        let cell = grid
            .get(
                DetectorKind::NsyncDwm,
                PrinterModel::Um3,
                SideChannel::Mag,
                Transform::Raw,
            )
            .unwrap();
        assert_eq!(cell.outcome.sub_modules.len(), 3);
    }

    #[test]
    fn interleave_is_a_key_alternating_permutation() {
        let spec = DetectorSpec::registry(am_dataset::Profile::Small)[0];
        let work: Vec<(DetectorSpec, SideChannel, Transform)> = [
            (SideChannel::Mag, Transform::Raw),
            (SideChannel::Mag, Transform::Raw),
            (SideChannel::Mag, Transform::Spectrogram),
            (SideChannel::Acc, Transform::Raw),
            (SideChannel::Acc, Transform::Raw),
            (SideChannel::Mag, Transform::Raw),
        ]
        .into_iter()
        .map(|(c, t)| (spec, c, t))
        .collect();
        let order = interleave_by_capture_key(&work);
        // A permutation: every index exactly once.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..work.len()).collect::<Vec<_>>());
        // Consecutive scheduled cells alternate keys while several keys
        // still have members (rounds 1 and 2 cover all three keys here).
        let keys: Vec<_> = order.iter().map(|&i| (work[i].1, work[i].2)).collect();
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[1], keys[2]);
        assert_ne!(keys[3], keys[4]);
    }

    #[test]
    fn report_accounts_prewarm_and_blocking() {
        let ctx = tiny_ctx();
        let (_, report) = run_grid_with(&ctx, &EngineConfig::with_threads(2)).unwrap();
        // All generation happens inside the timed pre-warm phase.
        assert!(report.prewarm_seconds > 0.0);
        assert!(report.wall_seconds >= report.prewarm_seconds);
        assert!(
            report.capture.generation_seconds() <= report.prewarm_seconds * 1.5,
            "generation ({:.3}s) should fall within the pre-warm phase ({:.3}s)",
            report.capture.generation_seconds(),
            report.prewarm_seconds
        );
        // Post-warm requests are uncontended cache hits.
        assert!(report.capture.blocked_seconds() < report.wall_seconds);
    }

    #[test]
    fn union_seconds_merges_overlaps() {
        assert_eq!(union_seconds(std::iter::empty()), 0.0);
        // [0,1]+[0.5,2] merge to [0,2]; [3,4]+[4,4.5] chain to [3,4.5];
        // the empty [2.5,2.5] contributes nothing.
        let spans = [(0.0, 1.0), (0.5, 2.0), (3.0, 4.0), (4.0, 4.5), (2.5, 2.5)];
        assert!((union_seconds(spans.iter().copied()) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn single_thread_stage_wall_equals_cpu() {
        let ctx = tiny_ctx();
        let (_, report) = run_grid_with(&ctx, &EngineConfig::with_threads(1)).unwrap();
        // One worker never overlaps itself: the interval union must
        // reproduce the summed stopwatches.
        assert!((report.fit_wall_seconds() - report.fit_cpu_seconds()).abs() < 1e-6);
        assert!((report.judge_wall_seconds() - report.judge_cpu_seconds()).abs() < 1e-6);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let ctx = tiny_ctx();
        let (one, _) = run_grid_with(&ctx, &EngineConfig::with_threads(1)).unwrap();
        let (four, _) = run_grid_with(&ctx, &EngineConfig::with_threads(4)).unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn config_resolution_prefers_explicit_threads() {
        assert_eq!(EngineConfig::with_threads(0).resolve_threads(), 1);
        assert_eq!(EngineConfig::with_threads(3).resolve_threads(), 3);
        assert!(EngineConfig::default().resolve_threads() >= 1);
    }

    #[test]
    fn outcome_bookkeeping() {
        let mut o = Outcome::default();
        o.record(
            true,
            &Verdict {
                intrusion: true,
                sub_modules: vec![(SubModuleId::Time, true), (SubModuleId::Match, false)],
                first_alert_index: Some(3),
            },
        );
        o.record(false, &Verdict::simple(false));
        assert_eq!(o.overall.tp, 1);
        assert_eq!(o.overall.benign, 1);
        assert_eq!(o.sub(SubModuleId::Time).tp, 1);
        assert_eq!(o.sub(SubModuleId::Match).tp, 0);
        assert_eq!(o.sub(SubModuleId::CDisp), Rates::default());
    }
}
