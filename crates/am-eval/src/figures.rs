//! The numeric series behind the paper's figures.
//!
//! | Figure | Content | Function |
//! |---|---|---|
//! | Fig 1 | repeated benign prints end at different times | [`fig1_durations`] |
//! | Fig 2 | correlation distances without DSYNC, benign vs malicious | [`fig2_no_sync_distances`] |
//! | Fig 6 | parametric analysis of `t_sigma`, `t_win`, `eta` | [`fig6_sigma`], [`fig6_window`], [`fig6_eta`] |
//! | Fig 10 | `h_disp` consistency across channels/transforms | [`fig10_hdisp`] |
//! | Fig 11 | time to synchronize 1 s of spectrogram, DWM vs DTW | [`fig11_sync_timing`] |
//! | Fig 12 | average accuracy of the seven IDSs | [`crate::tables::average_accuracies`] |

use crate::harness::{EvalError, Split, Transform};
use am_dataset::{RunRole, TrajectorySet};
use am_dsp::metrics::DistanceMetric;
use am_sensors::channel::SideChannel;
use am_sync::dwm::dwm;
use am_sync::{Alignment, AlignmentKind, DtwSynchronizer, DwmParams, Synchronizer};
use nsync::comparator::vertical_distances;

/// A labeled (x, y) series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// X values (seconds or window index, per figure).
    pub x: Vec<f64>,
    /// Y values.
    pub y: Vec<f64>,
}

impl Series {
    /// Max − min of the Y values (the "range" brackets of Fig 6).
    pub fn y_range(&self) -> f64 {
        let max = self.y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = self.y.iter().cloned().fold(f64::INFINITY, f64::min);
        if max >= min {
            max - min
        } else {
            0.0
        }
    }
}

/// Fig 1: wall-clock durations (s) of the reference + benign runs — all
/// from identical G-code; the spread is pure time noise.
pub fn fig1_durations(set: &TrajectorySet, max_runs: usize) -> Vec<(String, f64)> {
    set.runs
        .iter()
        .filter(|r| r.role.is_benign())
        .take(max_runs)
        .map(|r| {
            (
                r.role.to_string(),
                r.trajectory.duration() - r.trajectory.print_start(),
            )
        })
        .collect()
}

fn find_test(
    split: &Split,
    pred: impl Fn(&RunRole) -> bool,
) -> Result<&am_dataset::Capture, EvalError> {
    split
        .tests
        .iter()
        .find(|c| pred(&c.role))
        .map(|c| c.as_ref())
        .ok_or_else(|| EvalError::InvalidSplit("required test run missing".into()))
}

/// Fig 2: window-by-window correlation distances **without** DSYNC for a
/// benign and a malicious (Void) process. Returns `(benign, malicious)`.
///
/// # Errors
///
/// Propagates capture failures.
pub fn fig2_no_sync_distances(
    set: &TrajectorySet,
    channel: SideChannel,
) -> Result<(Series, Series), EvalError> {
    let split = Split::generate(set, channel, Transform::Raw)?;
    let params = set.spec.profile.dwm_params(set.spec.printer);
    let fs = split.reference.signal.fs();
    let n_win = (params.t_win * fs).round() as usize;
    let n_hop = (params.t_hop * fs).round() as usize;
    let make = |role_pred: &dyn Fn(&RunRole) -> bool, label: &str| -> Result<Series, EvalError> {
        let cap = find_test(&split, role_pred)?;
        let windows = if cap.signal.len() >= n_win {
            (cap.signal.len() - n_win) / n_hop + 1
        } else {
            0
        };
        let alignment = Alignment {
            h_disp: vec![0.0; windows],
            kind: AlignmentKind::Windowed { n_win, n_hop },
        };
        let v = vertical_distances(
            &cap.signal,
            &split.reference.signal,
            &alignment,
            DistanceMetric::Correlation,
        )?;
        Ok(Series {
            label: label.into(),
            x: (0..v.len()).map(|i| i as f64 * params.t_hop).collect(),
            y: v,
        })
    };
    let benign = make(&|r| matches!(r, RunRole::TestBenign(0)), "benign (no sync)")?;
    let malicious = make(
        &|r| matches!(r, RunRole::Malicious { attack, index: 0 } if attack == "Void"),
        "malicious Void (no sync)",
    )?;
    Ok((benign, malicious))
}

fn benign_pair(
    set: &TrajectorySet,
    channel: SideChannel,
    transform: Transform,
) -> Result<(am_dsp::Signal, am_dsp::Signal), EvalError> {
    let split = Split::generate(set, channel, transform)?;
    let obs = find_test(&split, |r| matches!(r, RunRole::TestBenign(0)))?
        .signal
        .clone();
    Ok((obs, split.reference.signal.clone()))
}

fn hdisp_series(alignment: &Alignment, t_hop: f64, fs: f64, label: String) -> Series {
    Series {
        label,
        x: (0..alignment.h_disp.len())
            .map(|i| i as f64 * t_hop)
            .collect(),
        y: alignment.h_disp.iter().map(|d| d / fs).collect(),
    }
}

/// Fig 6(a): `h_disp` for several `t_sigma` values (with the paper's
/// fixed ratio `t_ext = 2 t_sigma`). Returns one series per value.
///
/// # Errors
///
/// Propagates sync failures.
pub fn fig6_sigma(
    set: &TrajectorySet,
    channel: SideChannel,
    sigmas: &[f64],
) -> Result<Vec<Series>, EvalError> {
    let (a, b) = benign_pair(set, channel, Transform::Raw)?;
    let base = set.spec.profile.dwm_params(set.spec.printer);
    let mut out = Vec::new();
    for &sigma in sigmas {
        let params = DwmParams {
            t_sigma: sigma,
            t_ext: 2.0 * sigma,
            ..base
        };
        let al = dwm(&a, &b, &params)?;
        out.push(hdisp_series(
            &al,
            params.t_hop,
            a.fs(),
            format!("t_sigma={sigma}"),
        ));
    }
    Ok(out)
}

/// Fig 6(b): `h_disp` for several `t_win` values (hop/ext/sigma scale
/// with the window, as in §VI-C's defaults).
///
/// # Errors
///
/// Propagates sync failures.
pub fn fig6_window(
    set: &TrajectorySet,
    channel: SideChannel,
    windows: &[f64],
) -> Result<Vec<Series>, EvalError> {
    let (a, b) = benign_pair(set, channel, Transform::Raw)?;
    let mut out = Vec::new();
    for &w in windows {
        let params = DwmParams::from_window(w);
        let al = dwm(&a, &b, &params)?;
        out.push(hdisp_series(
            &al,
            params.t_hop,
            a.fs(),
            format!("t_win={w}"),
        ));
    }
    Ok(out)
}

/// Fig 6(c): `h_disp` for several `eta` values.
///
/// # Errors
///
/// Propagates sync failures.
pub fn fig6_eta(
    set: &TrajectorySet,
    channel: SideChannel,
    etas: &[f64],
) -> Result<Vec<Series>, EvalError> {
    let (a, b) = benign_pair(set, channel, Transform::Raw)?;
    let base = set.spec.profile.dwm_params(set.spec.printer);
    let mut out = Vec::new();
    for &eta in etas {
        let params = DwmParams { eta, ..base };
        let al = dwm(&a, &b, &params)?;
        out.push(hdisp_series(
            &al,
            params.t_hop,
            a.fs(),
            format!("eta={eta}"),
        ));
    }
    Ok(out)
}

/// Fig 10: `h_disp` (in seconds) for the given channels × both
/// transforms on one benign process.
///
/// # Errors
///
/// Propagates sync failures.
pub fn fig10_hdisp(
    set: &TrajectorySet,
    channels: &[SideChannel],
) -> Result<Vec<Series>, EvalError> {
    let params = set.spec.profile.dwm_params(set.spec.printer);
    let mut out = Vec::new();
    for &channel in channels {
        for transform in [Transform::Raw, Transform::Spectrogram] {
            let (a, b) = benign_pair(set, channel, transform)?;
            let al = dwm(&a, &b, &params)?;
            out.push(hdisp_series(
                &al,
                params.t_hop,
                a.fs(),
                format!("{channel}/{transform}"),
            ));
        }
    }
    Ok(out)
}

/// Consistency metric for Fig 10's claim: Pearson correlation between two
/// `h_disp` series (truncated to the common length). Near 1 for channels
/// that track the same physical time noise.
pub fn hdisp_consistency(a: &Series, b: &Series) -> f64 {
    let n = a.y.len().min(b.y.len());
    if n < 2 {
        return 0.0;
    }
    am_dsp::metrics::pearson(&a.y[..n], &b.y[..n])
}

/// Fig 11: wall-clock seconds needed to synchronize one second of
/// spectrogram signal, per synchronizer, averaged over the given
/// channels. (The paper's "time ratio".)
///
/// Three rows are reported: DWM, FastDTW at the paper's radius 1, and
/// **exact** DTW (measured on a bounded prefix so it terminates — its
/// quadratic cost is the reason the paper "could not apply DTW on the raw
/// signals").
///
/// # Errors
///
/// Propagates capture/sync failures.
pub fn fig11_sync_timing(
    set: &TrajectorySet,
    channels: &[SideChannel],
) -> Result<Vec<(String, f64)>, EvalError> {
    let params = set.spec.profile.dwm_params(set.spec.printer);
    let mut dwm_total = 0.0;
    let mut fast_total = 0.0;
    let mut exact_total = 0.0;
    let mut signal_secs = 0.0;
    let mut exact_secs = 0.0;
    for &channel in channels {
        let (a, b) = benign_pair(set, channel, Transform::Spectrogram)?;
        signal_secs += a.duration();
        let t0 = std::time::Instant::now();
        let _ = dwm(&a, &b, &params)?;
        dwm_total += t0.elapsed().as_secs_f64();
        let sync = DtwSynchronizer::default();
        let t1 = std::time::Instant::now();
        let _ = sync.synchronize(&a, &b)?;
        fast_total += t1.elapsed().as_secs_f64();
        // Exact DTW on a bounded prefix (quadratic cost).
        let n = a.len().min(b.len()).min(1024);
        let ap = a.slice(0..n).map_err(am_sync::SyncError::from)?;
        let bp = b.slice(0..n).map_err(am_sync::SyncError::from)?;
        exact_secs += ap.duration();
        let t2 = std::time::Instant::now();
        let _ = am_sync::dtw::dtw(&ap, &bp)?;
        exact_total += t2.elapsed().as_secs_f64();
    }
    Ok(vec![
        ("DWM".into(), dwm_total / signal_secs),
        ("FastDTW(r=1)".into(), fast_total / signal_secs),
        ("DTW(exact)".into(), exact_total / exact_secs),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_dataset::ExperimentSpec;
    use am_printer::config::PrinterModel;

    fn set() -> TrajectorySet {
        TrajectorySet::generate(ExperimentSpec::small(PrinterModel::Um3)).unwrap()
    }

    #[test]
    fn fig1_shows_spread() {
        let s = set();
        let durations = fig1_durations(&s, 8);
        assert!(durations.len() >= 3);
        let values: Vec<f64> = durations.iter().map(|(_, d)| *d).collect();
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max - min > 0.01, "time noise must spread durations");
    }

    #[test]
    fn fig2_benign_distances_blow_up_without_sync() {
        let s = set();
        let (benign, malicious) = fig2_no_sync_distances(&s, SideChannel::Mag).unwrap();
        assert!(!benign.y.is_empty());
        assert!(!malicious.y.is_empty());
        // The paper's point: without DSYNC, by the end of the process the
        // benign distances are comparable to the malicious ones.
        let tail = |s: &Series| {
            let n = s.y.len();
            s.y[n.saturating_sub(n / 4).max(1) - 1..]
                .iter()
                .sum::<f64>()
                / (n / 4).max(1) as f64
        };
        let b_tail = tail(&benign);
        let m_tail = tail(&malicious);
        assert!(
            b_tail > 0.3 * m_tail,
            "benign tail {b_tail} should rival malicious {m_tail}"
        );
    }

    #[test]
    fn fig6_sigma_small_sigma_is_noisier() {
        let s = set();
        let series = fig6_sigma(&s, SideChannel::Mag, &[0.25, 1.0]).unwrap();
        assert_eq!(series.len(), 2);
        for ser in &series {
            assert!(!ser.y.is_empty());
            assert!(ser.y_range().is_finite());
        }
    }

    #[test]
    fn fig10_consistency_between_transforms() {
        let s = set();
        let series = fig10_hdisp(&s, &[SideChannel::Acc]).unwrap();
        assert_eq!(series.len(), 2);
        let c = hdisp_consistency(&series[0], &series[1]);
        // Raw-ACC and spectro-ACC h_disp track the same time noise.
        assert!(c > 0.5, "consistency {c}");
    }

    #[test]
    fn series_helpers() {
        let s = Series {
            label: "x".into(),
            x: vec![0.0, 1.0],
            y: vec![1.0, 4.0],
        };
        assert_eq!(s.y_range(), 3.0);
        let empty = Series {
            label: "e".into(),
            x: vec![],
            y: vec![],
        };
        assert_eq!(empty.y_range(), 0.0);
        assert_eq!(hdisp_consistency(&s, &empty), 0.0);
    }
}
