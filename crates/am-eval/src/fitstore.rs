//! Memoized trained detectors for one grid run.
//!
//! The grid's fit stage is the expensive half of every cell: training an
//! IDS re-synchronizes every training run against the reference. Two
//! cells whose [`FitKey`]s are equal train to bit-identical detector
//! state, so the engine hoists fits out of cells into a [`FitStore`] —
//! the same `parking_lot` slot discipline as
//! [`CaptureStore`](am_dataset::CaptureStore), built on the shared
//! [`KeyedSlots`] map: the first requester of a key fits while holding
//! only its own slot's lock, concurrent requesters of the *same* key
//! block until the trained detector is ready (never fitting a
//! duplicate), and distinct keys fit in parallel. Trained detectors are
//! handed out as `Arc<dyn Detector>`, so sharing one across every cell
//! (and worker) that needs it is a pointer bump.
//!
//! Telemetry comes with the slot map: `fit.lookups` / `fit.hits` /
//! `fit.misses` counters, a `fit.lock_wait` histogram, and a
//! `fit.generate` span around each fit.

use crate::detector::{Detector, DetectorSpec};
use am_dataset::{KeyedSlots, SlotStats, Transform};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use std::sync::Arc;

/// Identity of one trained detector: the fit-relevant spec projection
/// ([`DetectorSpec::fit_spec`]) plus the training split it was fitted on.
/// The split is determined by (printer, channel, transform) — every cell
/// of a grid set draws its reference/train/test partition from the same
/// capture store key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitKey {
    /// Fit-relevant detector parameters.
    pub spec: DetectorSpec,
    /// Printer whose captures trained the detector.
    pub printer: PrinterModel,
    /// Side channel of the training split.
    pub channel: SideChannel,
    /// Raw or spectrogram.
    pub transform: Transform,
}

impl FitKey {
    /// The key for a grid cell: projects the spec through
    /// [`DetectorSpec::fit_spec`] so judge-only parameters never split
    /// the cache.
    pub fn for_cell(
        spec: DetectorSpec,
        printer: PrinterModel,
        channel: SideChannel,
        transform: Transform,
    ) -> FitKey {
        FitKey {
            spec: spec.fit_spec(),
            printer,
            channel,
            transform,
        }
    }
}

/// A shared, immutable trained detector (judging takes `&self`).
pub type SharedDetector = Arc<dyn Detector>;

/// Memoizing store of trained detectors, keyed by [`FitKey`]. The key
/// set is fixed at construction (the engine registers every distinct key
/// of a set's work list up front); see the [module docs](self) for the
/// locking and telemetry contract.
#[derive(Debug)]
pub struct FitStore {
    slots: KeyedSlots<FitKey, SharedDetector>,
}

impl FitStore {
    /// Creates an empty store over the given key set (duplicates are
    /// dropped).
    pub fn new(keys: impl IntoIterator<Item = FitKey>) -> Self {
        FitStore {
            slots: KeyedSlots::new("fit", keys),
        }
    }

    /// Number of registered fit keys.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns the trained detector for `key`, running `fit` under the
    /// slot lock on first request. Concurrent requesters of the same key
    /// block (observable as `blocked_nanos` in [`FitStore::stats`])
    /// until the one fit finishes, then share its result. A failed fit
    /// is not cached; the next request retries.
    ///
    /// # Panics
    ///
    /// Panics if `key` was not registered at construction.
    ///
    /// # Errors
    ///
    /// Propagates `fit`'s error.
    pub fn get_or_fit<E>(
        &self,
        key: &FitKey,
        fit: impl FnOnce() -> Result<SharedDetector, E>,
    ) -> Result<SharedDetector, E> {
        self.slots.get_or_insert_with(key, fit)
    }

    /// Returns the trained detector for `key` only if some earlier
    /// [`FitStore::get_or_fit`] populated it — never fits. The engine's
    /// judge stage uses this: after the fit stage every key is warm, so
    /// an empty slot is an invariant violation at the call site, not a
    /// reason to nest a fit inside a judge worker.
    pub fn cached(&self, key: &FitKey) -> Option<SharedDetector> {
        self.slots.try_get(key)
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> SlotStats {
        self.slots.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorKind;
    use crate::detector::Verdict;
    use crate::harness::EvalError;
    use am_baselines::RunData;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct NullDetector;

    impl Detector for NullDetector {
        fn name(&self) -> String {
            "null".into()
        }
        fn fit(&mut self, _: &RunData, _: &[RunData]) -> Result<(), EvalError> {
            Ok(())
        }
        fn judge(&self, _: &RunData) -> Result<Verdict, EvalError> {
            Ok(Verdict::simple(false))
        }
    }

    fn key(kind: DetectorKind, channel: SideChannel) -> FitKey {
        FitKey::for_cell(
            DetectorSpec::of(kind),
            PrinterModel::Um3,
            channel,
            Transform::Raw,
        )
    }

    #[test]
    fn fits_once_per_key_and_shares_the_arc() {
        let keys = [
            key(DetectorKind::Moore, SideChannel::Mag),
            key(DetectorKind::Moore, SideChannel::Acc),
        ];
        let store = FitStore::new(keys);
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
        let fits = AtomicUsize::new(0);
        let a: Result<_, EvalError> = store.get_or_fit(&keys[0], || {
            fits.fetch_add(1, Ordering::Relaxed);
            Ok(Arc::new(NullDetector) as SharedDetector)
        });
        let b: Result<_, EvalError> = store.get_or_fit(&keys[0], || {
            fits.fetch_add(1, Ordering::Relaxed);
            Ok(Arc::new(NullDetector) as SharedDetector)
        });
        assert!(Arc::ptr_eq(&a.unwrap(), &b.unwrap()), "one shared detector");
        assert_eq!(fits.load(Ordering::Relaxed), 1);
        assert_eq!(store.stats().misses, 1);
        assert_eq!(store.stats().hits, 1);
        // The second key is untouched; cached() never fits.
        assert!(store.cached(&keys[1]).is_none());
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn duplicate_fit_specs_collapse_to_one_key() {
        // Two registry entries that differ only post-fit_spec() would
        // land on the same slot; today fit_spec is the identity, so
        // literal duplicates stand in for them.
        let k = key(DetectorKind::Gao, SideChannel::Mag);
        let store = FitStore::new([k, k]);
        assert_eq!(store.len(), 1);
    }
}
