//! The unified detector abstraction: one trait, one verdict type, and a
//! data-driven registry covering all seven IDSs the paper compares
//! (§VIII, Tables V–IX).
//!
//! Before this module existed the repository drove the five baselines
//! through `am_baselines::BaselineDetector` and the two NSYNC variants
//! through `nsync::NsyncIds`, with one bespoke `eval_*` function per IDS.
//! Here every IDS is a [`Detector`]: `fit` on the benign reference +
//! training runs, `judge` each test run into a [`Verdict`]. Which cells
//! of the (printer × channel × transform) grid an IDS participates in is
//! expressed as data — [`Constraints`] — instead of `if transform == …`
//! control flow scattered through the grid loop, so adding detector #8 is
//! a [`DetectorSpec::registry`] entry, not a new driver.

use crate::harness::EvalError;
use am_baselines::bayens::BayensIds;
use am_baselines::belikovetsky::BelikovetskyIds;
use am_baselines::gao::GaoIds;
use am_baselines::gatlin::GatlinIds;
use am_baselines::moore::MooreIds;
use am_baselines::{BaselineDetector, RunData};
use am_dataset::{Profile, Transform};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sync::{DtwSynchronizer, DwmParams, DwmSynchronizer, SyncArena, Synchronizer};
use nsync::discriminator::SubModule;
use nsync::{NsyncIds, TrainedIds};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The seven IDSs of the paper's comparison, in registry order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Moore: point-by-point MAE, no DSYNC (Table V left).
    Moore,
    /// Gao: Moore re-aligned at every layer change (Table V right).
    Gao,
    /// Gatlin: layer timing + per-layer fingerprints (Table VII).
    Gatlin,
    /// Bayens: Dejavu-style audio fingerprinting (Table VI).
    Bayens,
    /// Belikovetsky: PCA + cosine on audio spectrograms (§VIII-C).
    Belikovetsky,
    /// NSYNC with the DWM synchronizer (Table VIII).
    NsyncDwm,
    /// NSYNC with the (Fast)DTW synchronizer (Table IX).
    NsyncDtw,
}

impl DetectorKind {
    /// All seven kinds, in registry order.
    pub fn all() -> [DetectorKind; 7] {
        [
            DetectorKind::Moore,
            DetectorKind::Gao,
            DetectorKind::Gatlin,
            DetectorKind::Bayens,
            DetectorKind::Belikovetsky,
            DetectorKind::NsyncDwm,
            DetectorKind::NsyncDtw,
        ]
    }

    /// Which grid cells this IDS participates in, as data (§VIII-C/D:
    /// Bayens and Belikovetsky are audio-only; Gatlin raw-only;
    /// Belikovetsky spectrogram-only; DTW "took forever" on raw signals).
    pub fn constraints(self) -> Constraints {
        match self {
            DetectorKind::Moore | DetectorKind::Gao | DetectorKind::NsyncDwm => Constraints {
                channel: None,
                raw: true,
                spectrogram: true,
            },
            DetectorKind::Gatlin => Constraints {
                channel: None,
                raw: true,
                spectrogram: false,
            },
            DetectorKind::Bayens => Constraints {
                channel: Some(SideChannel::Aud),
                raw: true,
                spectrogram: false,
            },
            DetectorKind::Belikovetsky => Constraints {
                channel: Some(SideChannel::Aud),
                raw: false,
                spectrogram: true,
            },
            DetectorKind::NsyncDtw => Constraints {
                channel: None,
                raw: false,
                spectrogram: true,
            },
        }
    }

    /// The Fig 12 bar label ("(T)" marks IDSs that see ground-truth layer
    /// times, as in the paper).
    pub fn fig12_label(self) -> &'static str {
        match self {
            DetectorKind::Moore => "Moore",
            DetectorKind::Gao => "Gao",
            DetectorKind::Gatlin => "Gatlin (T)",
            DetectorKind::Bayens => "Bayens (T)",
            DetectorKind::Belikovetsky => "Belikovetsky",
            DetectorKind::NsyncDwm => "NSYNC/DWM (T)",
            DetectorKind::NsyncDtw => "NSYNC/DTW (T)",
        }
    }
}

impl fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DetectorKind::Moore => "Moore",
            DetectorKind::Gao => "Gao",
            DetectorKind::Gatlin => "Gatlin",
            DetectorKind::Bayens => "Bayens",
            DetectorKind::Belikovetsky => "Belikovetsky",
            DetectorKind::NsyncDwm => "NSYNC/DWM",
            DetectorKind::NsyncDtw => "NSYNC/DTW",
        };
        f.write_str(s)
    }
}

/// Per-IDS applicability constraints, expressed as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constraints {
    /// `Some(ch)` restricts the IDS to one channel (audio-only IDSs);
    /// `None` means every kept channel.
    pub channel: Option<SideChannel>,
    /// Accepts raw signals.
    pub raw: bool,
    /// Accepts Table III spectrograms.
    pub spectrogram: bool,
}

impl Constraints {
    /// `true` if the IDS runs on this (channel, transform) cell.
    pub fn supports(&self, channel: SideChannel, transform: Transform) -> bool {
        let channel_ok = self.channel.is_none_or(|only| only == channel);
        let transform_ok = match transform {
            Transform::Raw => self.raw,
            Transform::Spectrogram => self.spectrogram,
        };
        channel_ok && transform_ok
    }

    /// The channels this IDS evaluates over, against the kept set.
    pub fn channels(&self) -> Vec<SideChannel> {
        match self.channel {
            Some(only) => vec![only],
            None => SideChannel::kept().to_vec(),
        }
    }

    /// The transforms this IDS evaluates over.
    pub fn transforms(&self) -> Vec<Transform> {
        Transform::both()
            .into_iter()
            .filter(|t| self.supports(self.channel.unwrap_or(SideChannel::Acc), *t))
            .collect()
    }
}

/// One registry entry: an IDS plus its instantiation parameters. Bayens
/// appears once per retrieval window (the rows of Table VI).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorSpec {
    /// Which IDS.
    pub kind: DetectorKind,
    /// Bayens retrieval window in seconds (`None` for every other kind).
    pub window_s: Option<f64>,
}

impl DetectorSpec {
    /// A spec without parameters.
    pub fn of(kind: DetectorKind) -> Self {
        DetectorSpec {
            kind,
            window_s: None,
        }
    }

    /// The full registry for a profile: all seven IDSs, with Bayens
    /// expanded to the profile's two retrieval windows.
    pub fn registry(profile: Profile) -> Vec<DetectorSpec> {
        let mut out = Vec::new();
        for kind in DetectorKind::all() {
            if kind == DetectorKind::Bayens {
                for window in profile.bayens_windows() {
                    out.push(DetectorSpec {
                        kind,
                        window_s: Some(window),
                    });
                }
            } else {
                out.push(DetectorSpec::of(kind));
            }
        }
        out
    }

    /// The fit-relevant projection of this spec: two specs with equal
    /// `fit_spec()` (on the same printer and training split) train to the
    /// same detector state, so the grid's `FitStore` can share one fit
    /// between them.
    ///
    /// Today every registry parameter is fit-side — notably Bayens'
    /// retrieval window shapes its reference windows *and* its learned
    /// score threshold — so this is the identity. When a judge-only
    /// parameter is added (e.g. an alert-latency cutoff applied at
    /// decision time), strip it here and nowhere else; the sharing test
    /// (`tests/fit_store.rs`) pins that sharing never changes results.
    pub fn fit_spec(&self) -> DetectorSpec {
        *self
    }

    /// Display label (windows make Bayens entries distinguishable).
    pub fn label(&self) -> String {
        match self.window_s {
            Some(w) => format!("{}({w}s)", self.kind),
            None => self.kind.to_string(),
        }
    }

    /// Instantiates an untrained detector for a printer at a profile.
    pub fn build(&self, profile: Profile, printer: PrinterModel) -> Box<dyn Detector> {
        match self.kind {
            DetectorKind::Moore => Box::new(MooreDetector { trained: None }),
            DetectorKind::Gao => Box::new(GaoDetector { trained: None }),
            DetectorKind::Gatlin => Box::new(GatlinDetector { trained: None }),
            DetectorKind::Bayens => Box::new(BayensDetector {
                window_s: self.window_s.unwrap_or_else(|| profile.bayens_windows()[0]),
                trained: None,
            }),
            DetectorKind::Belikovetsky => Box::new(BelikovetskyDetector { trained: None }),
            DetectorKind::NsyncDwm => Box::new(NsyncDetector {
                synchronizer: SyncChoice::Dwm(profile.dwm_params(printer)),
                r: profile.nsync_r(),
                trained: None,
            }),
            DetectorKind::NsyncDtw => Box::new(NsyncDetector {
                synchronizer: SyncChoice::Dtw,
                r: profile.nsync_r(),
                trained: None,
            }),
        }
    }
}

/// Every sub-module any of the seven IDSs reports, unified (previously
/// split between `nsync::discriminator::SubModule` and the stringly-typed
/// `am_baselines::Verdict::sub_modules`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubModuleId {
    /// NSYNC: CADHD (Eq 17–18).
    CDisp,
    /// NSYNC: horizontal distance (Eq 19).
    HDist,
    /// NSYNC: vertical distance (Eq 20).
    VDist,
    /// Gatlin: layer-change timing.
    Time,
    /// Gatlin: per-layer fingerprint matching.
    Match,
    /// Bayens: window-sequence check.
    Sequence,
    /// Bayens: retrieval-score threshold.
    Threshold,
}

impl SubModuleId {
    /// Parses the baseline crates' sub-module names.
    pub fn parse(name: &str) -> Option<SubModuleId> {
        match name {
            "c_disp" => Some(SubModuleId::CDisp),
            "h_dist" => Some(SubModuleId::HDist),
            "v_dist" => Some(SubModuleId::VDist),
            "time" => Some(SubModuleId::Time),
            "match" => Some(SubModuleId::Match),
            "sequence" => Some(SubModuleId::Sequence),
            "threshold" => Some(SubModuleId::Threshold),
            _ => None,
        }
    }
}

impl From<SubModule> for SubModuleId {
    fn from(m: SubModule) -> Self {
        match m {
            SubModule::CDisp => SubModuleId::CDisp,
            SubModule::HDist => SubModuleId::HDist,
            SubModule::VDist => SubModuleId::VDist,
        }
    }
}

impl fmt::Display for SubModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SubModuleId::CDisp => "c_disp",
            SubModuleId::HDist => "h_dist",
            SubModuleId::VDist => "v_dist",
            SubModuleId::Time => "time",
            SubModuleId::Match => "match",
            SubModuleId::Sequence => "sequence",
            SubModuleId::Threshold => "threshold",
        };
        f.write_str(s)
    }
}

/// One detector's decision on one run — the single verdict type every IDS
/// funnels into.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// `true` if the IDS declares an intrusion.
    pub intrusion: bool,
    /// Per-sub-module outcomes, in the IDS's fixed order.
    pub sub_modules: Vec<(SubModuleId, bool)>,
    /// Earliest window index at which any sub-module fired (IDSs that
    /// don't localize alerts report `None`).
    pub first_alert_index: Option<usize>,
}

impl Verdict {
    /// A verdict with no sub-modules.
    pub fn simple(intrusion: bool) -> Self {
        Verdict {
            intrusion,
            sub_modules: Vec::new(),
            first_alert_index: None,
        }
    }

    /// Whether the given sub-module fired (`false` if absent).
    pub fn fired(&self, id: SubModuleId) -> bool {
        self.sub_modules.iter().any(|&(m, fired)| m == id && fired)
    }
}

impl From<am_baselines::Verdict> for Verdict {
    fn from(v: am_baselines::Verdict) -> Self {
        Verdict {
            intrusion: v.intrusion,
            sub_modules: v
                .sub_modules
                .iter()
                .filter_map(|(name, fired)| SubModuleId::parse(name).map(|id| (id, *fired)))
                .collect(),
            first_alert_index: None,
        }
    }
}

impl From<nsync::Detection> for Verdict {
    fn from(d: nsync::Detection) -> Self {
        Verdict {
            intrusion: d.intrusion,
            sub_modules: SubModule::all()
                .into_iter()
                .map(|m| (SubModuleId::from(m), d.fired(m)))
                .collect(),
            first_alert_index: d.first_alert_index,
        }
    }
}

/// The unified interface all seven IDSs implement: fit on the benign
/// reference + training runs, then judge test runs.
///
/// `Sync` is part of the contract because the grid engine shares one
/// trained detector across workers behind an `Arc` (judging takes
/// `&self`); every implementation holds plain data, so the bound costs
/// nothing.
pub trait Detector: Send + Sync {
    /// Display name.
    fn name(&self) -> String;

    /// Trains on the benign reference and OCC training runs.
    ///
    /// # Errors
    ///
    /// Propagates the underlying IDS's training failures.
    fn fit(&mut self, reference: &RunData, train: &[RunData]) -> Result<(), EvalError>;

    /// Classifies one observed run.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::NotFitted`] before [`Detector::fit`], and
    /// propagates the underlying IDS's failures.
    fn judge(&self, run: &RunData) -> Result<Verdict, EvalError>;

    /// [`Detector::fit`] running on a caller-owned scratch arena — the
    /// worker-pinned path stage schedulers use. Bit-identical to `fit`;
    /// the default ignores the arena (only the synchronizer-backed IDSs
    /// have reusable scratch).
    ///
    /// # Errors
    ///
    /// Same as [`Detector::fit`].
    fn fit_with(
        &mut self,
        reference: &RunData,
        train: &[RunData],
        _arena: &mut SyncArena,
    ) -> Result<(), EvalError> {
        self.fit(reference, train)
    }

    /// [`Detector::judge`] running on a caller-owned scratch arena.
    /// Bit-identical to `judge`; the default ignores the arena.
    ///
    /// # Errors
    ///
    /// Same as [`Detector::judge`].
    fn judge_with(&self, run: &RunData, _arena: &mut SyncArena) -> Result<Verdict, EvalError> {
        self.judge(run)
    }
}

/// OCC margin the paper plugs into the baselines that lack a published
/// decision module (`r = 0`, §III / §VIII-C).
const BASELINE_R: f64 = 0.0;

/// Comparison block size for the point-by-point baselines: ~100
/// comparisons per second of signal keeps raw multi-kHz channels cheap
/// without changing behaviour.
fn moore_block(fs: f64) -> usize {
    ((fs / 100.0).round() as usize).max(1)
}

fn not_fitted(name: &str) -> EvalError {
    EvalError::NotFitted(name.to_string())
}

struct MooreDetector {
    trained: Option<MooreIds>,
}

impl Detector for MooreDetector {
    fn name(&self) -> String {
        "Moore".into()
    }

    fn fit(&mut self, reference: &RunData, train: &[RunData]) -> Result<(), EvalError> {
        self.trained = Some(MooreIds::train_with_block(
            reference,
            train,
            BASELINE_R,
            moore_block(reference.signal.fs()),
        )?);
        Ok(())
    }

    fn judge(&self, run: &RunData) -> Result<Verdict, EvalError> {
        let ids = self.trained.as_ref().ok_or_else(|| not_fitted("Moore"))?;
        Ok(ids.detect(run)?.into())
    }
}

struct GaoDetector {
    trained: Option<GaoIds>,
}

impl Detector for GaoDetector {
    fn name(&self) -> String {
        "Gao".into()
    }

    fn fit(&mut self, reference: &RunData, train: &[RunData]) -> Result<(), EvalError> {
        self.trained = Some(GaoIds::train_with_block(
            reference,
            train,
            BASELINE_R,
            moore_block(reference.signal.fs()),
        )?);
        Ok(())
    }

    fn judge(&self, run: &RunData) -> Result<Verdict, EvalError> {
        let ids = self.trained.as_ref().ok_or_else(|| not_fitted("Gao"))?;
        Ok(ids.detect(run)?.into())
    }
}

struct GatlinDetector {
    trained: Option<GatlinIds>,
}

impl Detector for GatlinDetector {
    fn name(&self) -> String {
        "Gatlin".into()
    }

    fn fit(&mut self, reference: &RunData, train: &[RunData]) -> Result<(), EvalError> {
        self.trained = Some(GatlinIds::train(reference, train, BASELINE_R)?);
        Ok(())
    }

    fn judge(&self, run: &RunData) -> Result<Verdict, EvalError> {
        let ids = self.trained.as_ref().ok_or_else(|| not_fitted("Gatlin"))?;
        Ok(ids.detect(run)?.into())
    }
}

struct BayensDetector {
    window_s: f64,
    trained: Option<BayensIds>,
}

impl Detector for BayensDetector {
    fn name(&self) -> String {
        format!("Bayens({}s)", self.window_s)
    }

    fn fit(&mut self, reference: &RunData, train: &[RunData]) -> Result<(), EvalError> {
        self.trained = Some(BayensIds::train(
            reference,
            train,
            self.window_s,
            BASELINE_R,
        )?);
        Ok(())
    }

    fn judge(&self, run: &RunData) -> Result<Verdict, EvalError> {
        let ids = self.trained.as_ref().ok_or_else(|| not_fitted("Bayens"))?;
        Ok(ids.detect(run)?.into())
    }
}

struct BelikovetskyDetector {
    trained: Option<BelikovetskyIds>,
}

impl Detector for BelikovetskyDetector {
    fn name(&self) -> String {
        "Belikovetsky".into()
    }

    fn fit(&mut self, reference: &RunData, _train: &[RunData]) -> Result<(), EvalError> {
        // Belikovetsky's fixed 0.63 rule needs only the reference.
        self.trained = Some(BelikovetskyIds::train(reference)?);
        Ok(())
    }

    fn judge(&self, run: &RunData) -> Result<Verdict, EvalError> {
        let ids = self
            .trained
            .as_ref()
            .ok_or_else(|| not_fitted("Belikovetsky"))?;
        Ok(ids.detect(run)?.into())
    }
}

/// Which synchronizer an NSYNC instance uses, as data.
enum SyncChoice {
    Dwm(DwmParams),
    Dtw,
}

impl SyncChoice {
    fn make(&self) -> Box<dyn Synchronizer + Send + Sync> {
        match self {
            SyncChoice::Dwm(params) => Box::new(DwmSynchronizer::new(*params)),
            SyncChoice::Dtw => Box::new(DtwSynchronizer::default()),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            SyncChoice::Dwm(_) => "NSYNC/DWM",
            SyncChoice::Dtw => "NSYNC/DTW",
        }
    }
}

struct NsyncDetector {
    synchronizer: SyncChoice,
    r: f64,
    trained: Option<TrainedIds>,
}

impl Detector for NsyncDetector {
    fn name(&self) -> String {
        self.synchronizer.name().into()
    }

    fn fit(&mut self, reference: &RunData, train: &[RunData]) -> Result<(), EvalError> {
        let mut arena = SyncArena::new();
        self.fit_with(reference, train, &mut arena)
    }

    fn judge(&self, run: &RunData) -> Result<Verdict, EvalError> {
        let mut arena = SyncArena::new();
        self.judge_with(run, &mut arena)
    }

    fn fit_with(
        &mut self,
        reference: &RunData,
        train: &[RunData],
        arena: &mut SyncArena,
    ) -> Result<(), EvalError> {
        let ids = NsyncIds::builder()
            .boxed_synchronizer(self.synchronizer.make())
            .build()?;
        let signals: Vec<am_dsp::Signal> = train.iter().map(|r| r.signal.clone()).collect();
        self.trained = Some(ids.train_with(&signals, reference.signal.clone(), self.r, arena)?);
        Ok(())
    }

    fn judge_with(&self, run: &RunData, arena: &mut SyncArena) -> Result<Verdict, EvalError> {
        let ids = self
            .trained
            .as_ref()
            .ok_or_else(|| not_fitted(self.synchronizer.name()))?;
        Ok(ids.detect_with(&run.signal, arena)?.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_seven() {
        let specs = DetectorSpec::registry(Profile::Small);
        assert_eq!(specs.len(), 8, "Bayens appears once per window");
        let kinds: std::collections::HashSet<DetectorKind> = specs.iter().map(|s| s.kind).collect();
        assert_eq!(kinds.len(), 7);
        let bayens: Vec<f64> = specs.iter().filter_map(|s| s.window_s).collect();
        assert_eq!(bayens, Profile::Small.bayens_windows().to_vec());
        assert_eq!(specs[0].label(), "Moore");
        assert!(specs.iter().any(|s| s.label() == "Bayens(20s)"));
    }

    #[test]
    fn constraints_encode_the_papers_applicability() {
        use SideChannel::{Acc, Aud};
        use Transform::{Raw, Spectrogram};
        let c = DetectorKind::Bayens.constraints();
        assert!(c.supports(Aud, Raw));
        assert!(!c.supports(Acc, Raw), "Bayens is audio-only");
        assert!(!c.supports(Aud, Spectrogram));
        let c = DetectorKind::Belikovetsky.constraints();
        assert!(c.supports(Aud, Spectrogram));
        assert!(!c.supports(Aud, Raw));
        let c = DetectorKind::NsyncDtw.constraints();
        assert!(!c.supports(Acc, Raw), "DTW took forever on raw signals");
        assert!(c.supports(Acc, Spectrogram));
        assert_eq!(DetectorKind::Gatlin.constraints().transforms(), vec![Raw]);
        assert_eq!(DetectorKind::Moore.constraints().channels().len(), 4);
        assert_eq!(DetectorKind::Bayens.constraints().channels(), vec![Aud]);
    }

    #[test]
    fn judge_before_fit_is_an_error() {
        let spec = DetectorSpec::of(DetectorKind::Moore);
        let det = spec.build(Profile::Small, PrinterModel::Um3);
        let run = RunData::new(
            am_dsp::Signal::mono(10.0, vec![0.0; 32]).unwrap(),
            vec![0.0],
        );
        assert!(matches!(det.judge(&run), Err(EvalError::NotFitted(_))));
    }

    #[test]
    fn verdict_conversions_keep_sub_modules() {
        let b = am_baselines::Verdict {
            intrusion: true,
            sub_modules: vec![
                ("time".into(), true),
                ("match".into(), false),
                ("unknown".into(), true),
            ],
        };
        let v: Verdict = b.into();
        assert!(v.intrusion);
        assert!(v.fired(SubModuleId::Time));
        assert!(!v.fired(SubModuleId::Match));
        assert_eq!(v.sub_modules.len(), 2, "unknown names are dropped");
        assert_eq!(v.first_alert_index, None);
        assert!(!Verdict::simple(false).intrusion);
        assert_eq!(SubModuleId::parse("v_dist"), Some(SubModuleId::VDist));
        assert_eq!(SubModuleId::Sequence.to_string(), "sequence");
    }

    #[test]
    fn fig12_labels_are_the_published_names() {
        assert_eq!(DetectorKind::NsyncDwm.fig12_label(), "NSYNC/DWM (T)");
        assert_eq!(DetectorKind::Moore.to_string(), "Moore");
        assert_eq!(DetectorKind::NsyncDtw.to_string(), "NSYNC/DTW");
    }
}
