//! Evaluation harness: reproduces every table and figure of §VIII.
//!
//! - [`metrics`]: FPR / TPR / accuracy bookkeeping,
//! - [`harness`]: train/test splits over shared capture sets,
//! - [`detector`]: the unified [`detector::Detector`] trait and the
//!   registry of all seven IDSs (NSYNC with either synchronizer, plus
//!   the five baselines) with their applicability constraints as data,
//! - [`engine`]: the cached, stage-aware, deterministic parallel grid
//!   evaluator (capture prewarm → shared fit → judge),
//! - [`fitstore`]: memoized trained detectors shared across grid cells,
//! - [`tables`]: Tables V–IX as runnable functions returning structured
//!   rows,
//! - [`figures`]: the numeric series behind Figs 1, 2, 6, 10, 11 and 12,
//! - [`report`]: plain-text table rendering for terminal output and
//!   EXPERIMENTS.md,
//! - [`degradation`]: accuracy/latency decay of the streaming detector
//!   under injected sensor faults (DESIGN.md §7).
//!
//! Everything is deterministic given the experiment seed; the `bench`
//! crate wraps each table/figure in a Criterion target, and the root
//! `examples/` directory drives the same entry points interactively.

pub mod ablations;
pub mod degradation;
pub mod detector;
pub mod engine;
pub mod figures;
pub mod fitstore;
pub mod harness;
pub mod metrics;
pub mod report;
pub mod tables;

pub use degradation::{degradation_sweep, degradation_table, DegradationPoint};
pub use detector::{Constraints, Detector, DetectorKind, DetectorSpec, SubModuleId, Verdict};
pub use engine::{
    evaluate_split, run_grid, run_grid_with, EngineConfig, GridCell, GridReport, GridResults,
    Outcome,
};
pub use fitstore::{FitKey, FitStore, SharedDetector};
pub use harness::{EvalError, Split, Transform};
pub use metrics::Rates;
