//! Degradation-under-fault experiment: how gracefully does the
//! streaming IDS lose accuracy as its sensors fail?
//!
//! The paper evaluates NSYNC on clean captures; a deployment's sensors
//! degrade. This experiment replays the test split through the
//! streaming detector under a [`FaultPlan`] of increasing severity
//! (NaN gaps, burst noise, clock drift, stuck channels — see
//! [`FaultPlan::severity`] and DESIGN.md §7.5) and reports, per
//! severity:
//!
//! - accuracy / FPR / TPR against the clean-trained thresholds,
//! - mean added alert latency (windows) on the malicious runs that are
//!   detected both clean and faulted,
//! - how many channels ended up quarantined, and whether every stream
//!   was processed to completion (the whole point of the degradation
//!   runtime: the detector must survive its inputs).

use crate::harness::{EvalError, Split, Transform};
use crate::metrics::Rates;
use crate::report::TextTable;
use am_dataset::TrajectorySet;
use am_dsp::Signal;
use am_sensors::channel::SideChannel;
use am_sensors::faults::FaultPlan;
use am_sync::DwmSynchronizer;
use nsync::health::ChannelState;
use nsync::streaming::StreamSpec;
use nsync::NsyncIds;

/// One point of the degradation curve.
#[derive(Debug, Clone)]
pub struct DegradationPoint {
    /// Fault severity in `[0, 1]` (0 = clean).
    pub severity: f64,
    /// Detection rates at this severity.
    pub rates: Rates,
    /// Mean extra windows before the first alert, over malicious runs
    /// alerted both clean and faulted. Negative means faults made
    /// detection *earlier* (they often do — corruption looks anomalous).
    pub mean_added_latency_windows: Option<f64>,
    /// Highest number of simultaneously quarantined channels seen.
    pub max_quarantined: usize,
    /// Every test stream was pushed to completion without a fatal
    /// error.
    pub completed: bool,
}

/// Outcome of streaming one (possibly faulted) capture.
struct StreamRun {
    intrusion: bool,
    first_alert: Option<usize>,
    /// Peak simultaneously quarantined channels at any point in the
    /// stream (channels may recover before the capture ends).
    peak_quarantined: usize,
}

fn stream_one(signal: &Signal, spec: &StreamSpec) -> Result<StreamRun, EvalError> {
    let mut ids = spec.open()?;
    let chunk = ((0.5 * signal.fs()) as usize).max(1);
    let mut first_alert = None;
    let mut peak_quarantined = 0;
    let mut i = 0;
    while i < signal.len() {
        let end = (i + chunk).min(signal.len());
        let verdicts = ids.push(&signal.slice(i..end).map_err(nsync::NsyncError::from)?)?;
        if first_alert.is_none() {
            first_alert = verdicts.iter().map(|v| v.window_span.0).min();
        }
        peak_quarantined =
            peak_quarantined.max(ids.health_report().count(ChannelState::Quarantined));
        i = end;
    }
    Ok(StreamRun {
        intrusion: ids.max_severity().is_some(),
        first_alert,
        peak_quarantined,
    })
}

/// Sweeps fault severity over the raw test split of `channel` and
/// returns one [`DegradationPoint`] per entry of `severities`.
///
/// Training happens once, on clean captures — exactly the deployment
/// situation: thresholds are learned while the rig is healthy and must
/// keep working as it decays.
///
/// # Errors
///
/// Propagates capture and pipeline failures.
pub fn degradation_sweep(
    set: &TrajectorySet,
    channel: SideChannel,
    severities: &[f64],
    faults_seed: u64,
) -> Result<Vec<DegradationPoint>, EvalError> {
    let split = Split::generate(set, channel, Transform::Raw)?;
    let params = set.spec.profile.dwm_params(set.spec.printer);
    let r = set.spec.profile.nsync_r();
    let ids = NsyncIds::builder()
        .synchronizer(DwmSynchronizer::new(params))
        .build()?;
    let train: Vec<Signal> = split.train.iter().map(|c| c.signal.clone()).collect();
    let trained = ids.train(&train, split.reference.signal.clone(), r)?;
    let spec = trained.stream_spec(params);

    // Clean-baseline first-alert windows, for the latency column.
    let mut clean_alerts: Vec<Option<usize>> = Vec::with_capacity(split.tests.len());
    for test in &split.tests {
        let run = stream_one(&test.signal, &spec)?;
        clean_alerts.push(run.first_alert);
    }

    let mut points = Vec::with_capacity(severities.len());
    for &severity in severities {
        let mut rates = Rates::default();
        let mut latency_sum = 0.0;
        let mut latency_n = 0usize;
        let mut max_quarantined = 0usize;
        let mut completed = true;
        for (t, test) in split.tests.iter().enumerate() {
            let plan = FaultPlan::severity(
                severity,
                test.signal.channels(),
                test.signal.duration(),
                faults_seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let faulted = plan.apply(&test.signal).map_err(nsync::NsyncError::from)?;
            match stream_one(&faulted, &spec) {
                Ok(run) => {
                    let malicious = !test.role.is_benign();
                    rates.record(malicious, run.intrusion);
                    max_quarantined = max_quarantined.max(run.peak_quarantined);
                    if malicious {
                        if let (Some(clean), Some(faulted_first)) =
                            (clean_alerts[t], run.first_alert)
                        {
                            latency_sum += faulted_first as f64 - clean as f64;
                            latency_n += 1;
                        }
                    }
                }
                Err(_) => {
                    // A fatal pipeline error under faults is itself a
                    // finding: score it as a missed detection and flag
                    // the point.
                    completed = false;
                    rates.record(!test.role.is_benign(), false);
                }
            }
        }
        points.push(DegradationPoint {
            severity,
            rates,
            mean_added_latency_windows: (latency_n > 0).then(|| latency_sum / latency_n as f64),
            max_quarantined,
            completed,
        });
    }
    Ok(points)
}

/// Renders a sweep as a text table (EXPERIMENTS.md format).
pub fn degradation_table(channel: SideChannel, points: &[DegradationPoint]) -> TextTable {
    let mut table = TextTable::new(
        format!("Degradation under sensor faults — {channel} (streaming, clean-trained)"),
        vec![
            "Severity",
            "Accuracy",
            "FPR / TPR",
            "Added latency (win)",
            "Max quarantined",
            "Completed",
        ],
    );
    for p in points {
        table.push_row(vec![
            format!("{:.2}", p.severity),
            format!("{:.2}", p.rates.accuracy()),
            p.rates.cell(),
            p.mean_added_latency_windows
                .map_or_else(|| "-".into(), |l| format!("{l:+.1}")),
            p.max_quarantined.to_string(),
            if p.completed { "yes" } else { "NO" }.into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_dataset::spec::ProcessMix;
    use am_dataset::ExperimentSpec;
    use am_printer::config::PrinterModel;

    fn tiny_set() -> TrajectorySet {
        TrajectorySet::generate_with_mix(
            ExperimentSpec::small(PrinterModel::Um3),
            ProcessMix {
                train: 3,
                test_benign: 2,
                malicious_per_attack: 1,
            },
        )
        .unwrap()
    }

    #[test]
    fn sweep_degrades_gracefully_on_small_profile() {
        let set = tiny_set();
        let severities = [0.0, 0.35, 0.8];
        let points = degradation_sweep(&set, SideChannel::Acc, &severities, 42).unwrap();
        assert_eq!(points.len(), severities.len());
        // The runtime must survive every severity — that is the tentpole
        // claim, stronger than any accuracy number.
        for p in &points {
            assert!(p.completed, "pipeline died at severity {}", p.severity);
            let n = p.rates.benign + p.rates.malicious;
            assert_eq!(n, 7, "every test capture scored at severity {}", p.severity);
        }
        // Severity 0 is the clean baseline.
        assert_eq!(points[0].max_quarantined, 0);
        // Heavy faults quarantine at least one channel.
        assert!(points[2].max_quarantined >= 1, "{:?}", points[2]);
        // Monotone-ish degradation: accuracy never *improves* by more
        // than a small tolerance as severity rises (faulted sensors may
        // accidentally help on a given seed, but not by much).
        for w in points.windows(2) {
            assert!(
                w[1].rates.accuracy() <= w[0].rates.accuracy() + 0.15,
                "accuracy rose under faults: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
        let table = degradation_table(SideChannel::Acc, &points).render();
        assert!(table.contains("Severity"));
        assert!(table.lines().count() >= 3 + severities.len());
    }
}
