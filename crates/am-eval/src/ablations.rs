//! Ablation studies for the design decisions the paper argues for:
//!
//! 1. **Correlation vs Euclidean distance** (§VII-A): the DAQ's per-run
//!    gain drift confounds amplitude-sensitive metrics; the correlation
//!    distance is invariant.
//! 2. **TDEB bias** (§VI-B, Fig 5): without the Gaussian bias, TDE jumps
//!    between ambiguous alignments of periodic window content and the
//!    `h_disp` track thrashes.
//! 3. **Spike suppression** (Eq 21–22): without the trailing-min filter,
//!    isolated time-noise spikes in `h_dist`/`v_dist` raise the learned
//!    thresholds (or fire false positives).

use crate::harness::{EvalError, Split, Transform};
use crate::metrics::Rates;
use am_dataset::{RunRole, TrajectorySet};
use am_dsp::metrics::DistanceMetric;
use am_sensors::channel::SideChannel;
use am_sync::{DwmParams, DwmSynchronizer, Synchronizer};
use nsync::comparator::vertical_distances;
use nsync::discriminator::DiscriminatorConfig;
use nsync::NsyncIds;

/// Outcome of the metric ablation for one distance metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricAblation {
    /// Which metric.
    pub metric: DistanceMetric,
    /// Max vertical distance over a benign test run at nominal gain.
    pub benign_max: f64,
    /// Max vertical distance over the *same process* re-captured with the
    /// sensor gain shifted (microphone moved / ADC gain changed —
    /// §VII-A's footnote scenario).
    pub gain_shifted_max: f64,
}

impl MetricAblation {
    /// `gain_shifted_max / benign_max` — how much a pure gain change
    /// inflates the distance. ≈ 1 means gain-invariant (no false alarm);
    /// ≫ 1 means the metric would fire on a benign print after the
    /// microphone was nudged.
    pub fn gain_inflation(&self) -> f64 {
        if self.benign_max <= 0.0 {
            f64::INFINITY
        } else {
            self.gain_shifted_max / self.benign_max
        }
    }
}

/// Ablation 1 (§VII-A): a pure sensor-gain change on a benign process
/// must not look like an intrusion. The same benign capture is compared
/// at nominal gain and scaled by 1.8× (as if the microphone moved closer)
/// under each metric.
///
/// # Errors
///
/// Propagates capture/sync failures.
pub fn metric_gain_sensitivity(
    set: &TrajectorySet,
    channel: SideChannel,
) -> Result<Vec<MetricAblation>, EvalError> {
    let split = Split::generate(set, channel, Transform::Raw)?;
    let params = set.spec.profile.dwm_params(set.spec.printer);
    let sync = DwmSynchronizer::new(params);
    let benign = split
        .tests
        .iter()
        .find(|c| matches!(c.role, RunRole::TestBenign(0)))
        .ok_or_else(|| EvalError::InvalidSplit("benign test missing".into()))?;
    let mut shifted = benign.signal.clone();
    shifted.map_in_place(|v| v * 1.8);
    let al = sync.synchronize(&benign.signal, &split.reference.signal)?;
    // Gain does not change timing, so the same alignment applies.
    let mut out = Vec::new();
    for metric in [
        DistanceMetric::Correlation,
        DistanceMetric::Cosine,
        DistanceMetric::Euclidean,
        DistanceMetric::Manhattan,
    ] {
        let vb = vertical_distances(&benign.signal, &split.reference.signal, &al, metric)?;
        let vs = vertical_distances(&shifted, &split.reference.signal, &al, metric)?;
        let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
        out.push(MetricAblation {
            metric,
            benign_max: max(&vb),
            gain_shifted_max: max(&vs),
        });
    }
    Ok(out)
}

/// Ablation 2: benign `h_disp` roughness (CADHD of the final track) with
/// the tuned bias vs an effectively unbiased TDE (σ = 50× window).
/// Returns `(biased_cadhd, unbiased_cadhd)` — unbiased should be larger.
///
/// # Errors
///
/// Propagates capture/sync failures.
pub fn tdeb_bias_ablation(
    set: &TrajectorySet,
    channel: SideChannel,
) -> Result<(f64, f64), EvalError> {
    let split = Split::generate(set, channel, Transform::Raw)?;
    let benign = split
        .tests
        .iter()
        .find(|c| matches!(c.role, RunRole::TestBenign(0)))
        .ok_or_else(|| EvalError::InvalidSplit("benign test missing".into()))?;
    let tuned = set.spec.profile.dwm_params(set.spec.printer);
    let unbiased = DwmParams {
        t_sigma: tuned.t_win * 50.0, // flat bias across the search range
        ..tuned
    };
    let cadhd_of = |params: &DwmParams| -> Result<f64, EvalError> {
        let al = am_sync::dwm::dwm(&benign.signal, &split.reference.signal, params)?;
        Ok(*nsync::discriminator::cadhd(&al.h_disp)
            .last()
            .unwrap_or(&0.0))
    };
    Ok((cadhd_of(&tuned)?, cadhd_of(&unbiased)?))
}

/// Ablation 3: NSYNC detection rates as a function of the spike filter
/// window (paper default 3; 1 = no suppression).
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn filter_window_ablation(
    set: &TrajectorySet,
    channel: SideChannel,
    windows: &[usize],
) -> Result<Vec<(usize, Rates)>, EvalError> {
    let split = Split::generate(set, channel, Transform::Raw)?;
    let params = set.spec.profile.dwm_params(set.spec.printer);
    let mut out = Vec::new();
    for &w in windows {
        let ids = NsyncIds::builder()
            .synchronizer(DwmSynchronizer::new(params))
            .discriminator(DiscriminatorConfig::new().with_min_filter_window(w))
            .build()?;
        let train: Vec<am_dsp::Signal> = split.train.iter().map(|c| c.signal.clone()).collect();
        let trained = ids.train(&train, split.reference.signal.clone(), 0.3)?;
        let mut rates = Rates::default();
        for test in &split.tests {
            let d = trained.detect(&test.signal)?;
            rates.record(!test.role.is_benign(), d.intrusion);
        }
        out.push((w, rates));
    }
    Ok(out)
}

/// Ablation 4 (helper for the bench/CLI): NSYNC accuracy per attack type
/// — which attacks are hardest on a given channel.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn per_attack_tpr(
    set: &TrajectorySet,
    channel: SideChannel,
    transform: Transform,
) -> Result<Vec<(String, Rates)>, EvalError> {
    let split = Split::generate(set, channel, transform)?;
    let params = set.spec.profile.dwm_params(set.spec.printer);
    let ids = NsyncIds::builder()
        .synchronizer(DwmSynchronizer::new(params))
        .build()?;
    let train: Vec<am_dsp::Signal> = split.train.iter().map(|c| c.signal.clone()).collect();
    let trained = ids.train(&train, split.reference.signal.clone(), 0.3)?;
    let mut rows: Vec<(String, Rates)> = Vec::new();
    for test in &split.tests {
        let RunRole::Malicious { attack, .. } = &test.role else {
            continue;
        };
        let d = trained.detect(&test.signal)?;
        match rows.iter_mut().find(|(n, _)| n == attack) {
            Some((_, r)) => r.record(true, d.intrusion),
            None => {
                let mut r = Rates::default();
                r.record(true, d.intrusion);
                rows.push((attack.clone(), r));
            }
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_dataset::spec::ProcessMix;
    use am_dataset::ExperimentSpec;
    use am_printer::config::PrinterModel;

    fn set() -> TrajectorySet {
        TrajectorySet::generate_with_mix(
            ExperimentSpec::small(PrinterModel::Um3),
            ProcessMix {
                train: 3,
                test_benign: 2,
                malicious_per_attack: 1,
            },
        )
        .unwrap()
    }

    #[test]
    fn gain_change_inflates_euclidean_but_not_correlation() {
        let s = set();
        let results = metric_gain_sensitivity(&s, SideChannel::Acc).unwrap();
        let find = |m: DistanceMetric| {
            results
                .iter()
                .find(|r| r.metric == m)
                .expect("metric present")
                .gain_inflation()
        };
        // Correlation (and cosine) are gain-invariant: a 1.8x gain change
        // leaves distances essentially untouched.
        assert!((find(DistanceMetric::Correlation) - 1.0).abs() < 0.05);
        assert!((find(DistanceMetric::Cosine) - 1.0).abs() < 0.05);
        // Euclidean/Manhattan blow up on the same benign data — the false
        // alarms §VII-A warns about.
        assert!(find(DistanceMetric::Euclidean) > 1.3);
        assert!(find(DistanceMetric::Manhattan) > 1.3);
    }

    #[test]
    fn bias_smooths_the_benign_track() {
        let s = set();
        let (biased, unbiased) = tdeb_bias_ablation(&s, SideChannel::Acc).unwrap();
        assert!(
            biased <= unbiased,
            "bias should not roughen the track: {biased} vs {unbiased}"
        );
    }

    #[test]
    fn filter_ablation_runs_for_each_window() {
        let s = set();
        let rows = filter_window_ablation(&s, SideChannel::Mag, &[1, 3]).unwrap();
        assert_eq!(rows.len(), 2);
        for (_, r) in &rows {
            assert_eq!(r.benign + r.malicious, 7); // 2 benign + 5 attacks
        }
    }

    #[test]
    fn per_attack_rows_cover_table1() {
        let s = set();
        let rows = per_attack_tpr(&s, SideChannel::Acc, Transform::Raw).unwrap();
        assert_eq!(rows.len(), 5);
        let names: Vec<&str> = rows.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"Void"));
        assert!(names.contains(&"Speed0.95"));
    }
}
