//! Detection-rate bookkeeping.

use serde::{Deserialize, Serialize};

/// False-positive / true-positive rates of one IDS configuration, in the
//  paper's "FPR / TPR" cell format.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rates {
    /// False positives (benign flagged) over benign tests.
    pub fp: usize,
    /// Benign tests.
    pub benign: usize,
    /// True positives (malicious flagged) over malicious tests.
    pub tp: usize,
    /// Malicious tests.
    pub malicious: usize,
}

impl Rates {
    /// Records one classification outcome.
    pub fn record(&mut self, is_malicious: bool, flagged: bool) {
        if is_malicious {
            self.malicious += 1;
            if flagged {
                self.tp += 1;
            }
        } else {
            self.benign += 1;
            if flagged {
                self.fp += 1;
            }
        }
    }

    /// False positive rate; 0 when no benign tests were run.
    pub fn fpr(&self) -> f64 {
        if self.benign == 0 {
            0.0
        } else {
            self.fp as f64 / self.benign as f64
        }
    }

    /// True positive rate; 0 when no malicious tests were run.
    pub fn tpr(&self) -> f64 {
        if self.malicious == 0 {
            0.0
        } else {
            self.tp as f64 / self.malicious as f64
        }
    }

    /// The paper's accuracy: `[(1 − FPR) + TPR] / 2` (§VIII-F; valid
    /// because the benign and malicious test sets are balanced by
    /// construction).
    pub fn accuracy(&self) -> f64 {
        ((1.0 - self.fpr()) + self.tpr()) / 2.0
    }

    /// Formats as the tables' "FPR / TPR" cell.
    pub fn cell(&self) -> String {
        format!("{:.2} / {:.2}", self.fpr(), self.tpr())
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &Rates) {
        self.fp += other.fp;
        self.benign += other.benign;
        self.tp += other.tp;
        self.malicious += other.malicious;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_accuracy() {
        let mut r = Rates::default();
        for _ in 0..8 {
            r.record(false, false); // TN
        }
        r.record(false, true); // FP
        r.record(false, true); // FP
        for _ in 0..9 {
            r.record(true, true); // TP
        }
        r.record(true, false); // FN
        assert!((r.fpr() - 0.2).abs() < 1e-12);
        assert!((r.tpr() - 0.9).abs() < 1e-12);
        assert!((r.accuracy() - 0.85).abs() < 1e-12);
        assert_eq!(r.cell(), "0.20 / 0.90");
    }

    #[test]
    fn empty_rates_are_zero() {
        let r = Rates::default();
        assert_eq!(r.fpr(), 0.0);
        assert_eq!(r.tpr(), 0.0);
        assert_eq!(r.accuracy(), 0.5);
    }

    #[test]
    fn merge_adds() {
        let mut a = Rates {
            fp: 1,
            benign: 2,
            tp: 3,
            malicious: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.benign, 4);
        assert_eq!(a.tp, 6);
    }
}
