//! Judge-stage profiler: runs the grid once at 1 thread and prints judge
//! CPU seconds aggregated by detector label, plus the most expensive
//! individual cells. Honors `AM_SIMD`, so it answers "where does
//! `judge_cpu_seconds` go under this dispatch" without spelunking
//! Chrome traces:
//!
//! ```sh
//! cargo run --release --example judge_profile -p am-eval
//! AM_SIMD=fast cargo run --release --example judge_profile -p am-eval
//! ```

use am_eval::engine::{run_grid_with, EngineConfig};
use am_eval::tables::TableContext;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = TableContext::small()?;
    let (_grid, report) = run_grid_with(&ctx, &EngineConfig::with_threads(1))?;
    let mut by_label: BTreeMap<String, f64> = BTreeMap::new();
    let mut by_cell: Vec<(f64, String)> = Vec::new();
    for c in &report.cells {
        *by_label.entry(c.label.clone()).or_default() += c.judge_seconds;
        by_cell.push((
            c.judge_seconds,
            format!(
                "{} {:?} {:?} {:?}",
                c.label, c.printer, c.channel, c.transform
            ),
        ));
    }
    let mut rows: Vec<_> = by_label.into_iter().collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("dispatch: {}", report.simd_backend);
    println!("judge_cpu total: {:.3}", report.judge_cpu_seconds());
    for (label, secs) in rows {
        println!("{secs:8.3}  {label}");
    }
    by_cell.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    println!("-- top cells --");
    for (secs, what) in by_cell.iter().take(12) {
        println!("{secs:8.3}  {what}");
    }
    Ok(())
}
