//! Micro-benchmarks of the synchronization kernels at paper scale:
//! exact DTW, FastDTW (radius 1, as the paper runs it), and TDEB on a
//! DWM-shaped search problem — each with and without a reused scratch
//! workspace, so the allocation overhead is measurable in isolation.

use am_dsp::tde::{tdeb, tdeb_with, TdeBackend, TdeScratch};
use am_dsp::Signal;
use am_sync::dtw::{dtw, dtw_with, DtwScratch};
use am_sync::fastdtw::{fastdtw, fastdtw_with};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Four-channel signal so DTW takes the correlation-distance path the
/// grid exercises (magnetometer/accelerometer captures are 3–4 channels).
fn wavy(n: usize, stretch: f64) -> Signal {
    Signal::from_fn(1000.0, 4, n, |t, frame| {
        for (c, v) in frame.iter_mut().enumerate() {
            *v = ((1.0 + c as f64) * 2.3 * t * stretch).sin() + 0.2 * (11.0 * t + c as f64).cos();
        }
    })
    .expect("valid signal")
}

fn bench_dtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("dtw");
    group.sample_size(20);
    for &n in &[128usize, 256, 512] {
        let a = wavy(n, 1.0);
        let b = wavy(n + n / 8, 0.9);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |bch, _| {
            bch.iter(|| dtw(&a, &b).expect("valid"))
        });
        let mut scratch = DtwScratch::new();
        group.bench_with_input(BenchmarkId::new("exact_scratch", n), &n, |bch, _| {
            bch.iter(|| dtw_with(&a, &b, &mut scratch).expect("valid"))
        });
    }
    group.finish();
}

fn bench_fastdtw(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastdtw");
    group.sample_size(20);
    for &n in &[512usize, 2048] {
        let a = wavy(n, 1.0);
        let b = wavy(n + n / 8, 0.9);
        group.bench_with_input(BenchmarkId::new("r1", n), &n, |bch, _| {
            bch.iter(|| fastdtw(&a, &b, 1).expect("valid"))
        });
        let mut scratch = DtwScratch::new();
        group.bench_with_input(BenchmarkId::new("r1_scratch", n), &n, |bch, _| {
            bch.iter(|| fastdtw_with(&a, &b, 1, &mut scratch).expect("valid"))
        });
    }
    group.finish();
}

fn bench_tdeb_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("tdeb");
    group.sample_size(20);
    // The DWM shape at grid scale: window w inside a span of w + 2*ext.
    for &(w, ext) in &[(400usize, 200usize), (1600, 800)] {
        let x = wavy(w + 2 * ext, 1.0);
        let y = x.slice(ext..ext + w).expect("in range");
        for backend in [TdeBackend::Naive, TdeBackend::Fft] {
            let label = format!("{backend:?}_w{w}_e{ext}").to_lowercase();
            group.bench_with_input(BenchmarkId::new("alloc", &label), &w, |bch, _| {
                bch.iter(|| tdeb(&x, &y, ext as f64 / 2.0, backend).expect("valid"))
            });
            let mut scratch = TdeScratch::new();
            group.bench_with_input(BenchmarkId::new("scratch", &label), &w, |bch, _| {
                bch.iter(|| {
                    tdeb_with(&x, &y, ext as f64 / 2.0, backend, &mut scratch).expect("valid")
                })
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dtw, bench_fastdtw, bench_tdeb_scratch
}
criterion_main!(benches);
