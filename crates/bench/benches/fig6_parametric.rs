//! Fig 6: parametric analysis of `t_sigma`, `t_win`, `eta`. Prints the
//! per-parameter `h_disp` ranges once, then benchmarks a single DWM run.

use am_eval::figures::{fig6_eta, fig6_sigma, fig6_window};
use am_eval::harness::Transform;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sync::dwm::dwm;
use bench::{benign_pair, small_set};
use criterion::{criterion_group, criterion_main, Criterion};

fn fig6(c: &mut Criterion) {
    let set = small_set(PrinterModel::Um3);
    let channel = SideChannel::Acc;
    println!("\n=== Fig 6: parametric analysis (h_disp range in seconds) ===");
    for s in fig6_sigma(&set, channel, &[0.1, 0.25, 0.5, 1.0, 2.0]).expect("sweep") {
        println!("  (a) {:<14} range {:.3}", s.label, s.y_range());
    }
    for s in fig6_window(&set, channel, &[1.0, 2.0, 4.0, 8.0]).expect("sweep") {
        println!("  (b) {:<14} range {:.3}", s.label, s.y_range());
    }
    for s in fig6_eta(&set, channel, &[0.05, 0.1, 0.5, 1.0]).expect("sweep") {
        println!("  (c) {:<14} range {:.3}", s.label, s.y_range());
    }
    println!();

    let (a, b) = benign_pair(&set, channel, Transform::Raw);
    let params = set.spec.profile.dwm_params(set.spec.printer);
    c.bench_function("fig6/dwm_single_run_acc_raw", |bch| {
        bch.iter(|| dwm(&a, &b, &params).expect("sync"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = fig6
}
criterion_main!(benches);
