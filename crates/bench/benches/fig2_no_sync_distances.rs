//! Fig 2: without DSYNC, the correlation distances of a *benign* process
//! grow as large as a malicious one's. Prints the two series' summary
//! once, then benchmarks the no-sync comparator.

use am_eval::figures::fig2_no_sync_distances;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use bench::small_set;
use criterion::{criterion_group, criterion_main, Criterion};

fn fig2(c: &mut Criterion) {
    let set = small_set(PrinterModel::Um3);
    let (benign, malicious) = fig2_no_sync_distances(&set, SideChannel::Acc).expect("series");
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let tail = |v: &[f64]| mean(&v[v.len() * 3 / 4..]);
    println!("\n=== Fig 2: correlation distances without DSYNC (ACC) ===");
    println!(
        "  benign   : mean {:.3}, final-quarter mean {:.3}",
        mean(&benign.y),
        tail(&benign.y)
    );
    println!(
        "  malicious: mean {:.3}, final-quarter mean {:.3}",
        mean(&malicious.y),
        tail(&malicious.y)
    );
    println!("  -> by the end, benign distances rival malicious ones: point-by-point IDSs break\n");

    c.bench_function("fig2/no_sync_distance_series", |b| {
        b.iter(|| fig2_no_sync_distances(&set, SideChannel::Acc).expect("series"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = fig2
}
criterion_main!(benches);
