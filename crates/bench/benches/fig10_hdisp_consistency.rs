//! Fig 10: `h_disp` is a property of the printing process, not of the
//! side channel — channels that track printer state produce the same
//! displacement curve. Prints the consistency matrix once, then
//! benchmarks the per-channel DWM run.

use am_eval::figures::{fig10_hdisp, hdisp_consistency};
use am_eval::harness::Transform;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sync::dwm::dwm;
use bench::{benign_pair, small_set};
use criterion::{criterion_group, criterion_main, Criterion};

fn fig10(c: &mut Criterion) {
    let set = small_set(PrinterModel::Um3);
    let series = fig10_hdisp(&set, &SideChannel::all()).expect("hdisp grid");
    // Anchor: ACC raw (the first series).
    let anchor = &series[0];
    println!("\n=== Fig 10: h_disp consistency vs {} ===", anchor.label);
    for s in &series {
        println!(
            "  {:<18} range {:>7.3} s   consistency {:+.2}",
            s.label,
            s.y_range(),
            hdisp_consistency(anchor, s)
        );
    }
    println!("  (expect ACC/AUD ~ +1.0; EPT raw nonsense; TMP/PWR noise-like)\n");

    let (a, b) = benign_pair(&set, SideChannel::Mag, Transform::Raw);
    let params = set.spec.profile.dwm_params(set.spec.printer);
    c.bench_function("fig10/dwm_mag_raw", |bch| {
        bch.iter(|| dwm(&a, &b, &params).expect("sync"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = fig10
}
criterion_main!(benches);
