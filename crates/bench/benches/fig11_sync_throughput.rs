//! Fig 11: average time to dynamically synchronize one second of the
//! spectrograms — DWM vs (Fast)DTW. This is the paper's headline
//! performance claim; Criterion measures both synchronizers on identical
//! spectrogram pairs.

use am_eval::figures::fig11_sync_timing;
use am_eval::harness::Transform;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sync::{dwm::dwm, fastdtw::fastdtw};
use bench::{benign_pair, small_set};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn fig11(c: &mut Criterion) {
    let set = small_set(PrinterModel::Um3);
    println!("\n=== Fig 11: time to synchronize 1 s of spectrogram (lower is better) ===");
    for (name, ratio) in fig11_sync_timing(&set, &SideChannel::kept()).expect("timing series") {
        println!("  {name:<10} {:.6} s per signal-second", ratio);
    }
    println!();

    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    for channel in [SideChannel::Acc, SideChannel::Aud] {
        let (a, b) = benign_pair(&set, channel, Transform::Spectrogram);
        let params = set.spec.profile.dwm_params(set.spec.printer);
        group.bench_with_input(BenchmarkId::new("dwm", channel.id()), &channel, |bch, _| {
            bch.iter(|| dwm(&a, &b, &params).expect("sync"))
        });
        group.bench_with_input(
            BenchmarkId::new("fastdtw_r1", channel.id()),
            &channel,
            |bch, _| bch.iter(|| fastdtw(&a, &b, 1).expect("sync")),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = fig11
}
criterion_main!(benches);
