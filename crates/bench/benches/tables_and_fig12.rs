//! Tables V–IX and Fig 12: the full evaluation grid.
//!
//! The grid (every registered IDS × printer × channel × transform) is
//! computed once through the parallel engine and printed — this is the
//! regenerator for all five result tables and the accuracy bars of
//! Fig 12. Criterion then benchmarks one representative evaluation cell
//! per IDS through the same [`am_eval::evaluate_split`] driver, so
//! per-IDS costs are tracked over time.

use am_eval::detector::{DetectorKind, DetectorSpec};
use am_eval::engine::evaluate_split;
use am_eval::harness::{Split, Transform};
use am_eval::tables::{
    average_accuracies, run_grid_with, table5, table6, table7, table8, table9, EngineConfig,
    TableContext,
};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use bench::small_set;
use criterion::{criterion_group, criterion_main, Criterion};

fn tables(c: &mut Criterion) {
    // One-time: the full grid, printed for the record.
    let ctx = TableContext::small().expect("dataset");
    let (grid, report) = run_grid_with(&ctx, &EngineConfig::default()).expect("grid");
    println!("\n{}", table5(&grid));
    println!("{}", table6(&grid));
    println!("{}", table7(&grid));
    println!("{}", table8(&grid));
    println!("{}", table9(&grid));
    println!("=== Fig 12: average accuracy of the seven IDSs ===");
    for (name, acc) in average_accuracies(&grid) {
        let bar = "#".repeat((acc * 40.0).round() as usize);
        println!("  {name:<16} {acc:.3} {bar}");
    }
    println!(
        "grid: {:.1}s wall on {} threads, capture hit rate {:.2}",
        report.wall_seconds,
        report.threads,
        report.capture.hit_rate()
    );
    println!();

    // Criterion: one representative cell per IDS (UM3 / MAG).
    let set = small_set(PrinterModel::Um3);
    let profile = set.spec.profile;
    let printer = set.spec.printer;
    let raw = Split::generate(&set, SideChannel::Mag, Transform::Raw).expect("capture");
    let spec = Split::generate(&set, SideChannel::Mag, Transform::Spectrogram).expect("capture");
    let aud = Split::generate(&set, SideChannel::Aud, Transform::Raw).expect("capture");
    let aud_spec =
        Split::generate(&set, SideChannel::Aud, Transform::Spectrogram).expect("capture");

    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    let mut bench_cell = |id: &str, spec: DetectorSpec, split: &Split| {
        let split = split.clone();
        group.bench_function(id, move |b| {
            b.iter(|| evaluate_split(&spec, profile, printer, &split).expect("eval"))
        });
    };
    bench_cell(
        "table5/moore_mag_raw",
        DetectorSpec::of(DetectorKind::Moore),
        &raw,
    );
    bench_cell(
        "table5/gao_mag_raw",
        DetectorSpec::of(DetectorKind::Gao),
        &raw,
    );
    bench_cell(
        "table6/bayens_aud_20s",
        DetectorSpec {
            kind: DetectorKind::Bayens,
            window_s: Some(20.0),
        },
        &aud,
    );
    bench_cell(
        "table6/belikovetsky_aud_spec",
        DetectorSpec::of(DetectorKind::Belikovetsky),
        &aud_spec,
    );
    bench_cell(
        "table7/gatlin_mag_raw",
        DetectorSpec::of(DetectorKind::Gatlin),
        &raw,
    );
    bench_cell(
        "table8/nsync_dwm_mag_raw",
        DetectorSpec::of(DetectorKind::NsyncDwm),
        &raw,
    );
    bench_cell(
        "table9/nsync_dtw_mag_spec",
        DetectorSpec::of(DetectorKind::NsyncDtw),
        &spec,
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = tables
}
criterion_main!(benches);
