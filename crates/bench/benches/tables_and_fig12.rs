//! Tables V–IX and Fig 12: the full evaluation grid.
//!
//! The grid (every IDS × printer × channel × transform) is computed once
//! and printed — this is the regenerator for all five result tables and
//! the accuracy bars of Fig 12. Criterion then benchmarks one
//! representative evaluation cell per IDS so per-IDS costs are tracked
//! over time.

use am_eval::harness::{
    eval_bayens, eval_belikovetsky, eval_gao, eval_gatlin, eval_moore, eval_nsync, Split, Transform,
};
use am_eval::tables::{
    average_accuracies, run_grid, table5, table6, table7, table8, table9, TableContext,
};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sync::{DtwSynchronizer, DwmSynchronizer, Synchronizer};
use bench::small_set;
use criterion::{criterion_group, criterion_main, Criterion};

fn tables(c: &mut Criterion) {
    // One-time: the full grid, printed for the record.
    let ctx = TableContext::small().expect("dataset");
    let grid = run_grid(&ctx).expect("grid");
    println!("\n{}", table5(&grid));
    println!("{}", table6(&grid));
    println!("{}", table7(&grid));
    println!("{}", table8(&grid));
    println!("{}", table9(&grid));
    println!("=== Fig 12: average accuracy of the seven IDSs ===");
    for (name, acc) in average_accuracies(&grid) {
        let bar = "#".repeat((acc * 40.0).round() as usize);
        println!("  {name:<16} {acc:.3} {bar}");
    }
    println!();

    // Criterion: one representative cell per IDS (UM3 / MAG).
    let set = small_set(PrinterModel::Um3);
    let raw = Split::generate(&set, SideChannel::Mag, Transform::Raw).expect("capture");
    let spec = Split::generate(&set, SideChannel::Mag, Transform::Spectrogram).expect("capture");
    let aud = Split::generate(&set, SideChannel::Aud, Transform::Raw).expect("capture");
    let aud_spec =
        Split::generate(&set, SideChannel::Aud, Transform::Spectrogram).expect("capture");
    let params = set.spec.profile.dwm_params(set.spec.printer);

    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table5/moore_mag_raw", |b| {
        b.iter(|| eval_moore(&raw, 0.0).expect("eval"))
    });
    group.bench_function("table5/gao_mag_raw", |b| {
        b.iter(|| eval_gao(&raw, 0.0).expect("eval"))
    });
    group.bench_function("table6/bayens_aud_20s", |b| {
        b.iter(|| eval_bayens(&aud, 20.0, 0.0).expect("eval"))
    });
    group.bench_function("table6/belikovetsky_aud_spec", |b| {
        b.iter(|| eval_belikovetsky(&aud_spec).expect("eval"))
    });
    group.bench_function("table7/gatlin_mag_raw", |b| {
        b.iter(|| eval_gatlin(&raw, 0.0).expect("eval"))
    });
    group.bench_function("table8/nsync_dwm_mag_raw", |b| {
        b.iter(|| {
            let sync: Box<dyn Synchronizer + Send + Sync> = Box::new(DwmSynchronizer::new(params));
            eval_nsync(&raw, sync, 0.3).expect("eval")
        })
    });
    group.bench_function("table9/nsync_dtw_mag_spec", |b| {
        b.iter(|| {
            let sync: Box<dyn Synchronizer + Send + Sync> = Box::new(DtwSynchronizer::default());
            eval_nsync(&spec, sync, 0.3).expect("eval")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = tables
}
criterion_main!(benches);
