//! Ablation benches for the design choices DESIGN.md calls out:
//! distance metric (gain invariance), TDEB bias, spike-filter window,
//! and a per-attack difficulty breakdown.

use am_eval::ablations::{
    filter_window_ablation, metric_gain_sensitivity, per_attack_tpr, tdeb_bias_ablation,
};
use am_eval::harness::Transform;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use bench::small_set;
use criterion::{criterion_group, criterion_main, Criterion};

fn ablations(c: &mut Criterion) {
    let set = small_set(PrinterModel::Um3);

    println!("\n=== Ablation 1: sensor gain x1.8 on a benign print (v_dist inflation) ===");
    for r in metric_gain_sensitivity(&set, SideChannel::Acc).expect("ablation") {
        println!(
            "  {:<12} benign max {:.3} -> gain-shifted max {:.3}  (x{:.2})",
            r.metric.to_string(),
            r.benign_max,
            r.gain_shifted_max,
            r.gain_inflation()
        );
    }

    println!("\n=== Ablation 2: TDEB bias (benign CADHD, lower = smoother track) ===");
    let (biased, unbiased) = tdeb_bias_ablation(&set, SideChannel::Acc).expect("ablation");
    println!("  tuned sigma : CADHD {biased:.0}");
    println!("  no bias     : CADHD {unbiased:.0}");

    println!("\n=== Ablation 3: spike-filter window vs detection rates (ACC raw) ===");
    for (w, rates) in filter_window_ablation(&set, SideChannel::Acc, &[1, 3, 5]).expect("ablation")
    {
        println!(
            "  window {w}: FPR/TPR {}  accuracy {:.3}",
            rates.cell(),
            rates.accuracy()
        );
    }

    println!("\n=== Ablation 4: per-attack TPR (NSYNC/DWM, ACC raw) ===");
    for (attack, rates) in per_attack_tpr(&set, SideChannel::Acc, Transform::Raw).expect("ablation")
    {
        println!("  {attack:<12} TPR {:.2}", rates.tpr());
    }
    println!();

    c.bench_function("ablations/metric_gain_sensitivity", |b| {
        b.iter(|| metric_gain_sensitivity(&set, SideChannel::Mag).expect("ablation"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = ablations
}
criterion_main!(benches);
