//! Micro-benchmarks of the DSP kernels everything else stands on:
//! radix-2 FFT, Bluestein DFT, naive vs FFT sliding TDE, and TDEB.

use am_dsp::fft::{dft, fft_in_place, rfft_magnitude, Complex};
use am_dsp::tde::{similarity_scores, tdeb, TdeBackend};
use am_dsp::Signal;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn signal(n: usize, channels: usize) -> Signal {
    Signal::from_fn(1000.0, channels, n, |t, frame| {
        for (c, v) in frame.iter_mut().enumerate() {
            *v = ((1.0 + c as f64) * 3.1 * t).sin() + 0.3 * (17.0 * t + c as f64).cos();
        }
    })
    .expect("valid signal")
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 4096] {
        let buf: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), 0.0))
            .collect();
        group.bench_with_input(BenchmarkId::new("radix2", n), &n, |b, _| {
            b.iter(|| {
                let mut work = buf.clone();
                fft_in_place(&mut work).expect("pow2 length");
                work
            })
        });
        // Bluestein at the awkward length n-1 (never a power of two here).
        let odd: Vec<Complex> = buf[..n - 1].to_vec();
        group.bench_with_input(BenchmarkId::new("bluestein", n - 1), &n, |b, _| {
            b.iter(|| dft(&odd))
        });
    }
    // The Table III ACC window: 200 samples -> 101 bins.
    let win: Vec<f64> = (0..200).map(|i| (i as f64 * 0.21).sin()).collect();
    group.bench_function("table3_acc_window_200", |b| {
        b.iter(|| rfft_magnitude(&win, 256).expect("pow2"))
    });
    group.finish();
}

fn bench_tde(c: &mut Criterion) {
    let mut group = c.benchmark_group("tde");
    group.sample_size(20);
    // A DWM-shaped problem: window w inside a search span of w + 2*ext.
    for &(w, ext) in &[(400usize, 200usize), (1600, 800)] {
        let x = signal(w + 2 * ext, 1);
        let y = x.slice(ext..ext + w).expect("in range");
        group.bench_with_input(
            BenchmarkId::new("naive", format!("w{w}_e{ext}")),
            &w,
            |b, _| b.iter(|| similarity_scores(&x, &y, TdeBackend::Naive).expect("valid")),
        );
        group.bench_with_input(
            BenchmarkId::new("fft", format!("w{w}_e{ext}")),
            &w,
            |b, _| b.iter(|| similarity_scores(&x, &y, TdeBackend::Fft).expect("valid")),
        );
        group.bench_with_input(
            BenchmarkId::new("tdeb_auto", format!("w{w}_e{ext}")),
            &w,
            |b, _| b.iter(|| tdeb(&x, &y, ext as f64 / 2.0, TdeBackend::Auto).expect("valid")),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_fft, bench_tde
}
criterion_main!(benches);
