//! Fig 1: repeated benign prints of the same G-code end at different
//! times. Prints the duration series once, then benchmarks the firmware
//! execution that produces it.

use am_dataset::{ExperimentSpec, Profile};
use am_gcode::slicer::slice_gear;
use am_printer::{config::PrinterModel, firmware::execute_program};
use criterion::{criterion_group, criterion_main, Criterion};

fn fig1(c: &mut Criterion) {
    let spec = ExperimentSpec::small(PrinterModel::Um3);
    let slice_cfg = Profile::Small.slice_config(spec.printer);
    let program = slice_gear(&slice_cfg).expect("slice");
    let printer = spec.printer.config();
    let noise = Profile::Small.time_noise();

    println!("\n=== Fig 1: same G-code, same printer, different runs ===");
    let mut durations = Vec::new();
    for seed in 0..6u64 {
        let traj = execute_program(&program, &printer, &noise, seed).expect("execute");
        let motion = traj.duration() - traj.print_start();
        durations.push(motion);
        println!("  run {seed}: {motion:.2} s of motion");
    }
    let min = durations.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = durations.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "  end misalignment across runs: {:.2} s (the paper's Fig 1 effect)\n",
        max - min
    );

    c.bench_function("fig1/execute_noisy_print", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            execute_program(&program, &printer, &noise, seed).expect("execute")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = fig1
}
criterion_main!(benches);
