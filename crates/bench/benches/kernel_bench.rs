//! Micro-benchmarks of the `am_dsp::simd` kernel layer: every reduction
//! and elementwise primitive at each backend (`ordered` legacy loop,
//! `scalar` multi-accumulator lanes, `avx2` intrinsics), plus the two
//! end-to-end hot paths they feed — windowed DTW and FFT ZNCC — under
//! the bit-stable default vs the reassociated fast dispatch.
//!
//! On an AVX2 host the acceptance bar is >=2x on the dispatched dot /
//! ZNCC / min2 primitives over the `ordered` baseline. Backends that the
//! host does not support are skipped, not faked.

use am_dsp::simd::{self, Backend, SimdMode};
use am_dsp::tde::{similarity_scores, TdeBackend};
use am_dsp::Signal;
use am_sync::dtw::{dtw_with, DtwScratch};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Deterministic pseudo-random buffer (no `rand` needed for kernels).
fn buf(n: usize, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.371 + phase).sin() + 0.25 * (i as f64 * 0.053).cos())
        .collect()
}

fn backends() -> Vec<Backend> {
    let mut all = vec![Backend::Ordered, Backend::Scalar];
    if Backend::Avx2.available() {
        all.push(Backend::Avx2);
    }
    all
}

fn bench_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_reduce");
    for &n in &[64usize, 1024] {
        let a = buf(n, 0.0);
        let b = buf(n, 1.3);
        for backend in backends() {
            let id = |op: &str| BenchmarkId::new(format!("{op}/{}", backend.name()), n);
            group.bench_with_input(id("dot"), &n, |bch, _| {
                bch.iter(|| simd::dot_with(backend, &a, &b))
            });
            group.bench_with_input(id("sum"), &n, |bch, _| {
                bch.iter(|| simd::sum_with(backend, &a))
            });
            group.bench_with_input(id("sq_norm"), &n, |bch, _| {
                bch.iter(|| simd::sq_norm_with(backend, &a))
            });
            group.bench_with_input(id("abs_diff_sum"), &n, |bch, _| {
                bch.iter(|| simd::abs_diff_sum_with(backend, &a, &b))
            });
            group.bench_with_input(id("centered_dot_norms"), &n, |bch, _| {
                bch.iter(|| simd::centered_dot_norms_with(backend, &a, 0.1, &b, -0.2))
            });
        }
    }
    group.finish();
}

fn bench_elementwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_elementwise");
    for &n in &[64usize, 1024] {
        let a = buf(n, 0.0);
        let b = buf(n, 1.3);
        for backend in backends() {
            let id = |op: &str| BenchmarkId::new(format!("{op}/{}", backend.name()), n);
            let mut out = vec![0.0; n];
            group.bench_with_input(id("min2_into"), &n, |bch, _| {
                bch.iter(|| simd::min2_into_with(backend, &a, &b, &mut out))
            });
            group.bench_with_input(id("mul_in_place"), &n, |bch, _| {
                bch.iter(|| {
                    let mut work = a.clone();
                    simd::mul_in_place_with(backend, &mut work, &b);
                    work
                })
            });
        }
    }
    group.finish();
}

fn wavy(n: usize, stretch: f64) -> Signal {
    Signal::from_fn(1000.0, 4, n, move |t, frame| {
        for (c, v) in frame.iter_mut().enumerate() {
            *v = ((1.0 + c as f64) * 3.1 * t * stretch).sin() + 0.3 * (17.0 * t).cos();
        }
    })
    .expect("valid signal")
}

/// End-to-end hot paths under each dispatch mode. `force_mode` re-resolves
/// the process-wide dispatch, so these must not interleave with
/// bit-stability assertions — benches only measure.
fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("simd_end_to_end");
    group.sample_size(20);
    let a = wavy(192, 1.05);
    let b = wavy(192, 1.0);
    let x = signal_1ch(800);
    let y = x.slice(200..600).expect("in range");
    let mut modes = vec![SimdMode::Off, SimdMode::Scalar];
    if simd::avx2_available() {
        modes.push(SimdMode::Fast);
    }
    for mode in modes {
        let dispatch = simd::force_mode(mode);
        let label = dispatch.label();
        let mut scratch = DtwScratch::new();
        group.bench_function(BenchmarkId::new("dtw", label), |bch| {
            bch.iter(|| dtw_with(&a, &b, &mut scratch).expect("valid"))
        });
        group.bench_function(BenchmarkId::new("zncc_fft", label), |bch| {
            bch.iter(|| similarity_scores(&x, &y, TdeBackend::Fft).expect("valid"))
        });
    }
    // Leave the process on the default dispatch for any later groups.
    simd::force_mode(SimdMode::Auto);
    group.finish();
}

fn signal_1ch(n: usize) -> Signal {
    Signal::from_fn(1000.0, 1, n, |t, frame| {
        frame[0] = (3.1 * t).sin() + 0.3 * (17.0 * t).cos();
    })
    .expect("valid signal")
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_reductions, bench_elementwise, bench_end_to_end
}
criterion_main!(benches);
