//! Shared helpers for the benchmark targets.
//!
//! Every `benches/*.rs` target regenerates one table or figure from the
//! paper (printed once, outside the timed region) and then benchmarks the
//! computational kernel behind it with Criterion.

use am_dataset::{ExperimentSpec, RunRole, TrajectorySet};
use am_eval::harness::{Split, Transform};
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;

/// Generates the Small-profile experiment for a printer (used by every
/// bench target).
///
/// # Panics
///
/// Panics on generation failure — benches treat that as fatal.
pub fn small_set(printer: PrinterModel) -> TrajectorySet {
    TrajectorySet::generate(ExperimentSpec::small(printer)).expect("dataset generation")
}

/// Produces a `(benign observed, reference)` signal pair for a channel and
/// transform.
///
/// # Panics
///
/// Panics on capture failure.
pub fn benign_pair(
    set: &TrajectorySet,
    channel: SideChannel,
    transform: Transform,
) -> (am_dsp::Signal, am_dsp::Signal) {
    let split = Split::generate(set, channel, transform).expect("capture");
    let observed = split
        .tests
        .iter()
        .find(|c| matches!(c.role, RunRole::TestBenign(0)))
        .expect("benign test run")
        .signal
        .clone();
    (observed, split.reference.signal.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_data() {
        let set = small_set(PrinterModel::Um3);
        let (a, b) = benign_pair(&set, SideChannel::Mag, Transform::Raw);
        assert_eq!(a.channels(), b.channels());
        assert!(a.len() > 100);
    }
}
