//! The sensor-synthesis driver: walks a trajectory with a sequential
//! cursor and lets a [`SensorModel`] produce one frame per sample tick.

use am_dsp::Signal;
use am_printer::trajectory::{PrintTrajectory, PrinterSample};

/// A stateful model of one physical sensor.
///
/// Models keep internal state (oscillator phases, low-pass filters, RNG)
/// and are driven sample by sample; `dt` is the sample period.
pub trait SensorModel {
    /// Number of output channels.
    fn channels(&self) -> usize;

    /// Produces one frame of `channels()` values for the given printer
    /// state.
    fn sample(&mut self, state: &PrinterSample, dt: f64, out: &mut [f64]);
}

/// Runs `model` over `trajectory` at `fs` Hz, from the print-start
/// alignment point to the end of the run.
///
/// The returned signal's `t = 0` is the print start — mirroring the
/// paper's assumption that observed and reference signals "are aligned at
/// the beginning of their printing processes".
///
/// # Panics
///
/// Panics if `fs` is not positive (sensor configs are programmer-owned).
pub fn synthesize<M: SensorModel>(trajectory: &PrintTrajectory, model: &mut M, fs: f64) -> Signal {
    assert!(fs > 0.0 && fs.is_finite(), "fs must be positive");
    let _span = am_telemetry::span!("sensors.synth");
    let t0 = trajectory.print_start();
    let span = (trajectory.duration() - t0).max(0.0);
    let n = (span * fs).floor() as usize;
    let channels = model.channels();
    let dt = 1.0 / fs;
    let mut data: Vec<Vec<f64>> = vec![Vec::with_capacity(n); channels];
    let mut frame = vec![0.0; channels];
    let mut cursor = trajectory.cursor();
    for i in 0..n {
        let t = t0 + i as f64 * dt;
        let state = cursor.sample(t);
        model.sample(&state, dt, &mut frame);
        for (c, v) in frame.iter().enumerate() {
            data[c].push(*v);
        }
    }
    Signal::from_channels(fs, data).expect("sensor synthesis produces rectangular data")
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_gcode::slicer::{slice_gear, SliceConfig};
    use am_printer::{config::PrinterConfig, firmware::execute_program, noise::TimeNoise};

    struct SpeedProbe;
    impl SensorModel for SpeedProbe {
        fn channels(&self) -> usize {
            2
        }
        fn sample(&mut self, state: &PrinterSample, _dt: f64, out: &mut [f64]) {
            out[0] = state.velocity.norm();
            out[1] = state.hotend_temp;
        }
    }

    #[test]
    fn synthesize_shapes_and_alignment() {
        let printer = PrinterConfig::ultimaker3();
        let traj = execute_program(
            &slice_gear(&SliceConfig::small_gear()).unwrap(),
            &printer,
            &TimeNoise::disabled(),
            0,
        )
        .unwrap();
        let sig = synthesize(&traj, &mut SpeedProbe, 50.0);
        assert_eq!(sig.channels(), 2);
        let expected = ((traj.duration() - traj.print_start()) * 50.0).floor() as usize;
        assert_eq!(sig.len(), expected);
        // At t=0 (print start) the hotend is already hot.
        assert!(sig.sample(0, 1) > 195.0);
        // Motion occurs somewhere in the signal.
        let max_speed = sig.channel(0).iter().cloned().fold(0.0, f64::max);
        assert!(max_speed > 10.0);
    }
}
