//! Deterministic sensor-fault injection.
//!
//! Real DAQ front-ends fail in ways the clean synthesis chain never
//! shows: a connector works loose (dropout), an ADC rails (saturation),
//! a sensor die latches (stuck-at), EMI couples in (burst noise), a
//! crystal drifts (sample-rate error), and driver bugs surface as NaN
//! samples. A [`FaultPlan`] describes such a failure scenario as data —
//! serde-serializable, seeded, and reproducible — and applies it to any
//! captured [`Signal`] without touching the capture chain itself.
//!
//! Faults compose with [`DaqConfig`]'s own
//! imperfection model (gain drift, quantization, frame drops) via
//! [`FaultPlan::capture`]: the DAQ runs first, the plan corrupts its
//! output, exactly as a physical fault downstream of the ADC would.
//!
//! The fault model and the runtime semantics it drives are specified in
//! DESIGN.md §7.

use crate::daq::DaqConfig;
use crate::synth::SensorModel;
use am_dsp::{DspError, Signal};
use am_printer::noise::gaussian;
use am_printer::trajectory::PrintTrajectory;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One kind of sensor fault. Intervals are in seconds of capture time;
/// an interval reaching past the end of the signal is truncated, and an
/// interval entirely past the end is a no-op (plans outlive any single
/// print length).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultKind {
    /// The channel reads ground (0.0) for the interval — a loose
    /// connector or muted front-end.
    Dropout {
        /// Interval start (s).
        start_s: f64,
        /// Interval length (s).
        duration_s: f64,
    },
    /// The channel emits NaN for the interval — a driver/firmware gap.
    NanGap {
        /// Interval start (s).
        start_s: f64,
        /// Interval length (s).
        duration_s: f64,
    },
    /// The channel holds its last pre-fault value for the interval — a
    /// latched sensor die.
    StuckAt {
        /// Interval start (s).
        start_s: f64,
        /// Interval length (s).
        duration_s: f64,
    },
    /// The whole channel is clipped to `±limit` — an ADC railing at a
    /// reduced full-scale.
    Saturate {
        /// Clip magnitude (signal units). Must be positive and finite.
        limit: f64,
    },
    /// Additive Gaussian noise of std-dev `sigma` over the interval —
    /// an EMI burst.
    BurstNoise {
        /// Interval start (s).
        start_s: f64,
        /// Interval length (s).
        duration_s: f64,
        /// Noise std-dev (signal units). Must be non-negative and finite.
        sigma: f64,
    },
    /// The channel's effective sample clock runs fast/slow by `ppm`
    /// parts-per-million: the content is resampled at the wrong rate
    /// (linear interpolation, tail held) while the nominal `fs` and the
    /// sample count stay unchanged — a crystal tolerance fault.
    RateDrift {
        /// Clock error in parts-per-million. `|ppm| <= 200_000`.
        ppm: f64,
    },
}

/// A fault bound to one capture channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelFault {
    /// Zero-based channel index the fault applies to.
    pub channel: usize,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A reproducible set of channel faults.
///
/// The `seed` makes stochastic faults (burst noise) deterministic, so a
/// degradation experiment replays bit-identically.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the plan's own noise source.
    pub seed: u64,
    /// The faults, applied in order (drift first regardless of order —
    /// a clock error corrupts the timebase *before* amplitude faults).
    pub faults: Vec<ChannelFault>,
}

impl FaultPlan {
    /// An empty plan (applies as the identity).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// `true` if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Builder: adds one fault to `channel`.
    #[must_use]
    pub fn with(mut self, channel: usize, kind: FaultKind) -> Self {
        self.faults.push(ChannelFault { channel, kind });
        self
    }

    /// A parametric plan for degradation sweeps: `severity` in `[0, 1]`
    /// scales how much of a `duration_s`-long, `channels`-wide capture
    /// is corrupted. Severity 0 is the empty plan; severity 1 drops one
    /// whole channel (NaN), buries a second in noise, and clock-drifts a
    /// third. Channels are struck round-robin, so a single-channel
    /// capture receives every fault on channel 0.
    pub fn severity(severity: f64, channels: usize, duration_s: f64, seed: u64) -> Self {
        let s = severity.clamp(0.0, 1.0);
        if s == 0.0 || channels == 0 || duration_s <= 0.0 {
            return FaultPlan {
                seed,
                faults: Vec::new(),
            };
        }
        let ch = |i: usize| i % channels;
        // Faults start after a fault-free lead-in so the synchronizer
        // locks before things degrade; the corrupted span then grows
        // linearly with severity.
        let lead = 0.1 * duration_s;
        let span = s * (duration_s - lead);
        let mut plan = FaultPlan {
            seed,
            faults: Vec::new(),
        }
        .with(
            ch(0),
            FaultKind::NanGap {
                start_s: lead,
                duration_s: span,
            },
        )
        .with(
            ch(1),
            FaultKind::BurstNoise {
                start_s: lead,
                duration_s: span,
                sigma: 2.0 * s,
            },
        )
        .with(ch(2), FaultKind::RateDrift { ppm: 50_000.0 * s });
        if s > 0.5 {
            plan = plan.with(
                ch(3),
                FaultKind::StuckAt {
                    start_s: lead,
                    duration_s: span,
                },
            );
        }
        plan
    }

    /// Checks every fault against a capture shape.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for out-of-range channels,
    /// negative/non-finite intervals, or out-of-domain magnitudes.
    pub fn validate(&self, channels: usize) -> Result<(), DspError> {
        for (i, f) in self.faults.iter().enumerate() {
            if f.channel >= channels {
                return Err(DspError::InvalidParameter(format!(
                    "fault {i} targets channel {} but the capture has {channels}",
                    f.channel
                )));
            }
            let interval_ok = |start: f64, dur: f64| {
                start.is_finite() && dur.is_finite() && start >= 0.0 && dur >= 0.0
            };
            let ok = match f.kind {
                FaultKind::Dropout {
                    start_s,
                    duration_s,
                }
                | FaultKind::NanGap {
                    start_s,
                    duration_s,
                }
                | FaultKind::StuckAt {
                    start_s,
                    duration_s,
                } => interval_ok(start_s, duration_s),
                FaultKind::Saturate { limit } => limit.is_finite() && limit > 0.0,
                FaultKind::BurstNoise {
                    start_s,
                    duration_s,
                    sigma,
                } => interval_ok(start_s, duration_s) && sigma.is_finite() && sigma >= 0.0,
                FaultKind::RateDrift { ppm } => ppm.is_finite() && ppm.abs() <= 200_000.0,
            };
            if !ok {
                return Err(DspError::InvalidParameter(format!(
                    "fault {i} has out-of-domain parameters: {:?}",
                    f.kind
                )));
            }
        }
        Ok(())
    }

    /// Applies the plan to a capture, returning the corrupted copy.
    ///
    /// Deterministic: the same plan on the same signal yields the same
    /// output. The input shape (fs, channels, length) is preserved.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultPlan::validate`] failures.
    pub fn apply(&self, signal: &Signal) -> Result<Signal, DspError> {
        self.validate(signal.channels())?;
        let fs = signal.fs();
        let n = signal.len();
        let mut channels = signal.to_channels();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xFA_017);

        // Timebase faults first: amplitude faults then hit the already
        // mis-clocked stream, as in hardware.
        for f in &self.faults {
            if let FaultKind::RateDrift { ppm } = f.kind {
                resample_in_place(&mut channels[f.channel], 1.0 + ppm * 1e-6);
            }
        }
        for f in &self.faults {
            let data = &mut channels[f.channel];
            match f.kind {
                FaultKind::RateDrift { .. } => {}
                FaultKind::Dropout {
                    start_s,
                    duration_s,
                } => {
                    for v in interval_mut(data, fs, start_s, duration_s) {
                        *v = 0.0;
                    }
                }
                FaultKind::NanGap {
                    start_s,
                    duration_s,
                } => {
                    for v in interval_mut(data, fs, start_s, duration_s) {
                        *v = f64::NAN;
                    }
                }
                FaultKind::StuckAt {
                    start_s,
                    duration_s,
                } => {
                    let start = index_for(fs, start_s, n);
                    let held = if start > 0 { data[start - 1] } else { 0.0 };
                    for v in interval_mut(data, fs, start_s, duration_s) {
                        *v = held;
                    }
                }
                FaultKind::Saturate { limit } => {
                    for v in data.iter_mut() {
                        *v = v.clamp(-limit, limit);
                    }
                }
                FaultKind::BurstNoise {
                    start_s,
                    duration_s,
                    sigma,
                } => {
                    for v in interval_mut(data, fs, start_s, duration_s) {
                        *v += sigma * gaussian(&mut rng);
                    }
                }
            }
        }
        Signal::from_channels(fs, channels)
    }

    /// Captures through a DAQ, then applies this plan to the result —
    /// the full imperfect-acquisition chain in one call.
    ///
    /// # Errors
    ///
    /// Propagates DAQ and plan validation failures.
    pub fn capture<M: SensorModel>(
        &self,
        daq: &DaqConfig,
        trajectory: &PrintTrajectory,
        model: &mut M,
        seed: u64,
    ) -> Result<Signal, DspError> {
        let clean = daq.capture(trajectory, model, seed)?;
        self.apply(&clean)
    }
}

fn index_for(fs: f64, t: f64, len: usize) -> usize {
    ((t * fs).floor().max(0.0) as usize).min(len)
}

fn interval_mut(data: &mut [f64], fs: f64, start_s: f64, duration_s: f64) -> &mut [f64] {
    let len = data.len();
    let start = index_for(fs, start_s, len);
    let end = index_for(fs, start_s + duration_s, len);
    &mut data[start..end]
}

/// Resamples `data` in place at `rate` (output index n reads input index
/// `n * rate`), linear interpolation, tail held at the last sample.
fn resample_in_place(data: &mut Vec<f64>, rate: f64) {
    if data.is_empty() || rate == 1.0 {
        return;
    }
    let n = data.len();
    let last = data[n - 1];
    let out: Vec<f64> = (0..n)
        .map(|i| {
            let pos = i as f64 * rate;
            let lo = pos.floor() as usize;
            if lo + 1 >= n {
                last
            } else {
                let frac = pos - lo as f64;
                data[lo] * (1.0 - frac) + data[lo + 1] * frac
            }
        })
        .collect();
    *data = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> Signal {
        Signal::from_fn(10.0, 2, 100, |t, f| {
            f[0] = (1.3 * t).sin();
            f[1] = (2.9 * t).cos();
        })
        .unwrap()
    }

    #[test]
    fn empty_plan_is_identity() {
        let s = sig();
        let out = FaultPlan::none().apply(&s).unwrap();
        assert_eq!(out.to_channels(), s.to_channels());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn dropout_zeroes_the_interval_only() {
        let s = sig();
        let out = FaultPlan::none()
            .with(
                0,
                FaultKind::Dropout {
                    start_s: 2.0,
                    duration_s: 1.0,
                },
            )
            .apply(&s)
            .unwrap();
        assert!(out.channel(0)[20..30].iter().all(|&v| v == 0.0));
        assert_eq!(out.channel(0)[..20], s.channel(0)[..20]);
        assert_eq!(out.channel(0)[30..], s.channel(0)[30..]);
        assert_eq!(out.channel(1), s.channel(1));
    }

    #[test]
    fn nan_gap_and_stuck_at() {
        let s = sig();
        let out = FaultPlan::none()
            .with(
                0,
                FaultKind::NanGap {
                    start_s: 0.0,
                    duration_s: 0.5,
                },
            )
            .with(
                1,
                FaultKind::StuckAt {
                    start_s: 5.0,
                    duration_s: 100.0,
                },
            )
            .apply(&s)
            .unwrap();
        assert!(out.channel(0)[..5].iter().all(|v| v.is_nan()));
        assert!(out.channel(0)[5..].iter().all(|v| v.is_finite()));
        let held = s.channel(1)[49];
        assert!(out.channel(1)[50..].iter().all(|&v| v == held));
    }

    #[test]
    fn saturation_clips_whole_channel() {
        let s = sig();
        let out = FaultPlan::none()
            .with(0, FaultKind::Saturate { limit: 0.25 })
            .apply(&s)
            .unwrap();
        assert!(out.channel(0).iter().all(|v| v.abs() <= 0.25));
        assert_eq!(out.channel(1), s.channel(1));
    }

    #[test]
    fn burst_noise_is_seeded() {
        let s = sig();
        let plan = FaultPlan {
            seed: 7,
            faults: vec![ChannelFault {
                channel: 0,
                kind: FaultKind::BurstNoise {
                    start_s: 1.0,
                    duration_s: 2.0,
                    sigma: 0.5,
                },
            }],
        };
        let a = plan.apply(&s).unwrap();
        let b = plan.apply(&s).unwrap();
        assert_eq!(a.to_channels(), b.to_channels());
        assert_ne!(a.channel(0)[15], s.channel(0)[15]);
        let mut other = plan.clone();
        other.seed = 8;
        let c = other.apply(&s).unwrap();
        assert_ne!(a.channel(0)[15], c.channel(0)[15]);
    }

    #[test]
    fn rate_drift_shifts_content_but_not_shape() {
        let s = sig();
        let out = FaultPlan::none()
            .with(0, FaultKind::RateDrift { ppm: 100_000.0 })
            .apply(&s)
            .unwrap();
        assert_eq!(out.len(), s.len());
        assert_eq!(out.fs(), s.fs());
        // A 10% fast clock reads sample 55 where the clean capture reads 50.
        assert!((out.channel(0)[50] - s.channel(0)[55]).abs() < 1e-9);
    }

    #[test]
    fn intervals_truncate_past_the_end() {
        let s = sig();
        let out = FaultPlan::none()
            .with(
                0,
                FaultKind::Dropout {
                    start_s: 9.5,
                    duration_s: 100.0,
                },
            )
            .with(
                1,
                FaultKind::NanGap {
                    start_s: 500.0,
                    duration_s: 1.0,
                },
            )
            .apply(&s)
            .unwrap();
        assert!(out.channel(0)[95..].iter().all(|&v| v == 0.0));
        assert_eq!(out.channel(1), s.channel(1));
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let s = sig();
        for kind in [
            FaultKind::Dropout {
                start_s: -1.0,
                duration_s: 1.0,
            },
            FaultKind::NanGap {
                start_s: 0.0,
                duration_s: f64::NAN,
            },
            FaultKind::Saturate { limit: 0.0 },
            FaultKind::BurstNoise {
                start_s: 0.0,
                duration_s: 1.0,
                sigma: -0.1,
            },
            FaultKind::RateDrift { ppm: 1e9 },
        ] {
            assert!(
                FaultPlan::none().with(0, kind).apply(&s).is_err(),
                "{kind:?}"
            );
        }
        // Channel out of range.
        let bad = FaultPlan::none().with(2, FaultKind::Saturate { limit: 1.0 });
        assert!(bad.apply(&s).is_err());
    }

    #[test]
    fn severity_scales_monotonically() {
        assert!(FaultPlan::severity(0.0, 6, 60.0, 1).is_empty());
        let mild = FaultPlan::severity(0.2, 6, 60.0, 1);
        let harsh = FaultPlan::severity(0.9, 6, 60.0, 1);
        assert!(!mild.is_empty());
        assert!(harsh.faults.len() >= mild.faults.len());
        let gap = |p: &FaultPlan| {
            p.faults
                .iter()
                .find_map(|f| match f.kind {
                    FaultKind::NanGap { duration_s, .. } => Some(duration_s),
                    _ => None,
                })
                .unwrap()
        };
        assert!(gap(&harsh) > gap(&mild));
        // Single-channel captures fold every fault onto channel 0.
        let mono = FaultPlan::severity(1.0, 1, 60.0, 1);
        assert!(mono.faults.iter().all(|f| f.channel == 0));
    }
}
