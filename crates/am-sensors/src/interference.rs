//! Benign-labeled interference stressors.
//!
//! "Decoding Intellectual Property" (PAPERS.md) shows the same acoustic
//! and magnetic emanations the IDS listens to also leak the printed
//! geometry to an eavesdropper. An exfiltration probe parked next to the
//! printer does not change the print — the run stays *benign* — but its
//! carrier leaks back into the sensor front-end and pressures the
//! detectors' false-alarm rate. [`Interference`] synthesizes that overlay
//! deterministically so scenario rows can pin how much off-process signal
//! a detector tolerates before it starts crying wolf.
//!
//! This is the inverse of [`crate::faults::FaultPlan`]: faults degrade
//! the channel until the health machine quarantines it; interference
//! keeps the channel healthy while adding structured, print-uncorrelated
//! content that a brittle discriminator mistakes for an attack.

use am_dsp::{DspError, Signal};
use serde::{Deserialize, Serialize};

/// A deterministic interference overlay: an on-off-keyed carrier tone
/// (the exfiltration probe's modulated leak-back) plus a weak seeded
/// broadband component, both scaled relative to the victim signal's RMS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interference {
    /// Carrier frequency in Hz (clamped to Nyquist at apply time).
    pub carrier_hz: f64,
    /// Carrier amplitude as a fraction of the per-channel RMS.
    pub amplitude: f64,
    /// On-off keying period in seconds (the probe's symbol clock).
    pub burst_period_s: f64,
    /// Fraction of each period the carrier is on (0..=1).
    pub burst_duty: f64,
    /// Broadband component amplitude as a fraction of per-channel RMS.
    pub broadband: f64,
    /// Seed for the broadband noise and the keying phase.
    pub seed: u64,
}

impl Interference {
    /// The standard IP-exfiltration probe overlay used by the scenario
    /// zoo: a 1 s-keyed carrier at 30% of signal RMS with a light
    /// broadband floor — loud enough to shift window statistics, quiet
    /// enough that a synchronizer locked to the process should ride
    /// through it.
    pub fn exfil_probe(seed: u64) -> Self {
        Interference {
            carrier_hz: 37.0,
            amplitude: 0.3,
            burst_period_s: 1.0,
            burst_duty: 0.5,
            broadband: 0.05,
            seed,
        }
    }

    /// Returns a copy with a different seed (per-run decorrelation).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the overlay parameters.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for non-finite or
    /// out-of-domain parameters.
    pub fn validate(&self) -> Result<(), DspError> {
        let finite = self.carrier_hz.is_finite()
            && self.amplitude.is_finite()
            && self.burst_period_s.is_finite()
            && self.burst_duty.is_finite()
            && self.broadband.is_finite();
        if !finite
            || self.carrier_hz <= 0.0
            || self.amplitude < 0.0
            || self.broadband < 0.0
            || self.burst_period_s <= 0.0
            || !(0.0..=1.0).contains(&self.burst_duty)
        {
            return Err(DspError::InvalidParameter(format!(
                "invalid interference overlay: {self:?}"
            )));
        }
        Ok(())
    }

    /// Overlays the interference on a captured signal. Deterministic:
    /// the same overlay on the same signal yields the same output, and
    /// the input shape (fs, channels, length) is preserved.
    ///
    /// # Errors
    ///
    /// Propagates [`Interference::validate`] failures and signal
    /// reconstruction errors.
    pub fn apply(&self, signal: &Signal) -> Result<Signal, DspError> {
        self.validate()?;
        let fs = signal.fs();
        let n = signal.len();
        let carrier = self.carrier_hz.min(0.45 * fs);
        let period = (self.burst_period_s * fs).max(1.0);
        let on_span = self.burst_duty * period;
        // Keying phase offset derives from the seed so two runs under the
        // same probe are not sample-locked to each other.
        let phase0 = (splitmix(self.seed) % 1_000) as f64 / 1_000.0 * period;
        let mut channels = signal.to_channels();
        let tau = std::f64::consts::TAU;
        for (c, data) in channels.iter_mut().enumerate() {
            let rms = rms(data);
            if rms == 0.0 {
                continue;
            }
            let tone = self.amplitude * rms;
            let noise_amp = self.broadband * rms;
            let mut state = splitmix(self.seed ^ ((c as u64 + 1) << 32));
            for (i, v) in data.iter_mut().enumerate() {
                let keyed = ((i as f64 + phase0) % period) < on_span;
                if keyed {
                    *v += tone * (tau * carrier * i as f64 / fs).sin();
                }
                if noise_amp > 0.0 {
                    state = splitmix(state);
                    // Map to a uniform in [-1, 1).
                    let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                    *v += noise_amp * (2.0 * u - 1.0);
                }
            }
        }
        debug_assert_eq!(channels.len(), signal.channels());
        debug_assert!(channels.iter().all(|c| c.len() == n));
        Signal::from_channels(fs, channels)
    }
}

fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn rms(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let sum: f64 = data.iter().map(|v| v * v).sum();
    (sum / data.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_signal() -> Signal {
        Signal::from_fn(200.0, 2, 1000, |t, frame| {
            for (c, v) in frame.iter_mut().enumerate() {
                *v = (t * 10.0).sin() + c as f64 * 0.1;
            }
        })
        .unwrap()
    }

    #[test]
    fn apply_preserves_shape_and_is_deterministic() {
        let sig = probe_signal();
        let ovl = Interference::exfil_probe(9);
        let a = ovl.apply(&sig).unwrap();
        let b = ovl.apply(&sig).unwrap();
        assert_eq!(a.fs(), sig.fs());
        assert_eq!(a.channels(), sig.channels());
        assert_eq!(a.len(), sig.len());
        for c in 0..a.channels() {
            assert_eq!(a.channel(c), b.channel(c));
        }
    }

    #[test]
    fn overlay_changes_the_signal_but_not_wildly() {
        let sig = probe_signal();
        let out = Interference::exfil_probe(9).apply(&sig).unwrap();
        let mut max_delta = 0.0f64;
        for c in 0..sig.channels() {
            for (x, y) in sig.channel(c).iter().zip(out.channel(c)) {
                max_delta = max_delta.max((x - y).abs());
            }
        }
        assert!(max_delta > 0.0, "overlay must change samples");
        // Bounded: carrier + broadband stay in the same order of
        // magnitude as the signal itself.
        assert!(max_delta < 2.0 * sig.rms().max(1.0), "delta {max_delta}");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let sig = probe_signal();
        let a = Interference::exfil_probe(1).apply(&sig).unwrap();
        let b = Interference::exfil_probe(2).apply(&sig).unwrap();
        assert_ne!(a.channel(0)[..100], b.channel(0)[..100]);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let sig = probe_signal();
        let mut bad = Interference::exfil_probe(0);
        bad.burst_duty = 1.5;
        assert!(bad.apply(&sig).is_err());
        bad = Interference::exfil_probe(0);
        bad.carrier_hz = f64::NAN;
        assert!(bad.apply(&sig).is_err());
        bad = Interference::exfil_probe(0);
        bad.amplitude = -0.1;
        assert!(bad.apply(&sig).is_err());
    }

    #[test]
    fn zero_amplitude_only_adds_broadband() {
        let sig = probe_signal();
        let mut quiet = Interference::exfil_probe(3);
        quiet.amplitude = 0.0;
        quiet.broadband = 0.0;
        let out = quiet.apply(&sig).unwrap();
        for c in 0..sig.channels() {
            assert_eq!(out.channel(c), sig.channel(c));
        }
    }
}
