//! The data-acquisition chain: sampling, gain drift, quantization, and
//! frame drops.
//!
//! Two of the paper's core concerns live here:
//!
//! - **Gain variation** (§VII-A, footnote 2): "the amplitude of the
//!   acoustic side-channel signal strongly depends on the distance from
//!   the microphone to the printer as well as the gain of the ADC
//!   converter, both of which are susceptible to changes". Each capture
//!   draws a per-run gain factor, which is why NSYNC's correlation
//!   distance (gain-invariant) beats Euclidean/Manhattan.
//! - **Frame drops** (§I): "time noise can be a result of frame drops in
//!   data acquisition systems". Dropping a frame removes its samples and
//!   shifts everything after it earlier — a direct, physical source of
//!   horizontal displacement.

use crate::synth::SensorModel;
use am_dsp::{DspError, Signal};
use am_printer::noise::gaussian;
use am_printer::trajectory::PrintTrajectory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Acquisition configuration for one capture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DaqConfig {
    /// Sampling rate (Hz).
    pub fs: f64,
    /// ADC resolution in bits (Table II: 16 or 24).
    pub bits: u32,
    /// Std-dev of the per-run multiplicative gain factor.
    pub gain_sigma: f64,
    /// Additive noise referred to the input (same units as the signal).
    pub noise_sigma: f64,
    /// Samples per acquisition frame.
    pub frame_len: usize,
    /// Expected dropped frames per second of capture.
    pub frame_drop_rate: f64,
}

impl DaqConfig {
    /// A noiseless, drop-free DAQ — for reference signals and tests.
    pub fn noiseless(fs: f64) -> Self {
        DaqConfig {
            fs,
            bits: 24,
            gain_sigma: 0.0,
            noise_sigma: 0.0,
            frame_len: 64,
            frame_drop_rate: 0.0,
        }
    }

    /// A realistic DAQ: a few percent gain drift between runs, a low
    /// noise floor, and occasional frame drops. Frames last ~20 ms
    /// regardless of sampling rate (as with real USB/I²S transports), so
    /// a drop shifts the capture by ~20 ms.
    pub fn realistic(fs: f64, bits: u32) -> Self {
        DaqConfig {
            fs,
            bits,
            gain_sigma: 0.05,
            noise_sigma: 0.001,
            frame_len: ((fs / 50.0).round() as usize).max(1),
            frame_drop_rate: 0.02,
        }
    }

    /// Captures a sensor's output through this DAQ.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for non-positive `fs`, zero
    /// `frame_len`, or `bits` outside `2..=32`.
    pub fn capture<M: SensorModel>(
        &self,
        trajectory: &PrintTrajectory,
        model: &mut M,
        seed: u64,
    ) -> Result<Signal, DspError> {
        let _span = am_telemetry::span!("daq.capture");
        if !(self.fs.is_finite() && self.fs > 0.0) {
            return Err(DspError::InvalidParameter(format!(
                "daq fs must be positive, got {}",
                self.fs
            )));
        }
        if self.frame_len == 0 {
            return Err(DspError::InvalidParameter("frame_len must be >= 1".into()));
        }
        if !(2..=32).contains(&self.bits) {
            return Err(DspError::InvalidParameter(format!(
                "bits must be in 2..=32, got {}",
                self.bits
            )));
        }
        let raw = crate::synth::synthesize(trajectory, model, self.fs);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDA0_5EED);
        let gain = (1.0 + self.gain_sigma * gaussian(&mut rng)).max(0.05);

        // Decide which frames survive.
        let n = raw.len();
        let frames = n.div_ceil(self.frame_len);
        let p_drop = (self.frame_drop_rate * self.frame_len as f64 / self.fs).clamp(0.0, 0.9);
        let keep: Vec<bool> = (0..frames)
            .map(|_| !(p_drop > 0.0 && rng.gen::<f64>() < p_drop))
            .collect();

        let full_scale = raw
            .iter_channels()
            .flat_map(|ch| ch.iter())
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(1e-9)
            * 1.5;
        let q_step = full_scale * 2.0 / (1u64 << self.bits) as f64;

        let mut channels: Vec<Vec<f64>> = vec![Vec::with_capacity(n); raw.channels()];
        for c in 0..raw.channels() {
            let src = raw.channel(c);
            let dst = &mut channels[c];
            for (f, kept) in keep.iter().enumerate() {
                if !kept {
                    continue;
                }
                let start = f * self.frame_len;
                let end = (start + self.frame_len).min(n);
                for &v in &src[start..end] {
                    let noisy = v * gain + self.noise_sigma * gaussian(&mut rng);
                    let quantized = (noisy / q_step).round() * q_step;
                    dst.push(quantized.clamp(-full_scale, full_scale));
                }
            }
        }
        Signal::from_channels(self.fs, channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_gcode::slicer::{slice_gear, SliceConfig};
    use am_printer::trajectory::PrinterSample;
    use am_printer::{config::PrinterConfig, firmware::execute_program, noise::TimeNoise};

    struct Ramp(f64);
    impl SensorModel for Ramp {
        fn channels(&self) -> usize {
            1
        }
        fn sample(&mut self, _s: &PrinterSample, dt: f64, out: &mut [f64]) {
            self.0 += dt;
            out[0] = self.0;
        }
    }

    fn traj() -> am_printer::trajectory::PrintTrajectory {
        execute_program(
            &slice_gear(&SliceConfig::small_gear()).unwrap(),
            &PrinterConfig::ultimaker3(),
            &TimeNoise::disabled(),
            0,
        )
        .unwrap()
    }

    #[test]
    fn noiseless_daq_is_transparent_up_to_quantization() {
        let t = traj();
        let daq = DaqConfig::noiseless(100.0);
        let sig = daq.capture(&t, &mut Ramp(0.0), 0).unwrap();
        // Monotone ramp preserved.
        for w in sig.channel(0).windows(2) {
            assert!(w[1] >= w[0] - 1e-6);
        }
        let expected = ((t.duration() - t.print_start()) * 100.0).floor() as usize;
        assert_eq!(sig.len(), expected);
    }

    #[test]
    fn frame_drops_shorten_the_capture() {
        let t = traj();
        let mut daq = DaqConfig::noiseless(100.0);
        daq.frame_drop_rate = 0.5; // heavy dropping
        let dropped = daq.capture(&t, &mut Ramp(0.0), 3).unwrap();
        let clean = DaqConfig::noiseless(100.0)
            .capture(&t, &mut Ramp(0.0), 3)
            .unwrap();
        assert!(dropped.len() < clean.len());
        // Whole frames vanish: length difference is a multiple of frame_len
        // (except possibly the tail frame).
        let diff = clean.len() - dropped.len();
        assert!(diff >= daq.frame_len);
    }

    #[test]
    fn gain_varies_between_seeds() {
        let t = traj();
        let mut daq = DaqConfig::noiseless(100.0);
        daq.gain_sigma = 0.1;
        let a = daq.capture(&t, &mut Ramp(0.0), 1).unwrap();
        let b = daq.capture(&t, &mut Ramp(0.0), 2).unwrap();
        let ra = a.rms();
        let rb = b.rms();
        assert!(
            (ra / rb - 1.0).abs() > 1e-4,
            "gains identical: {ra} vs {rb}"
        );
    }

    #[test]
    fn quantization_limits_distinct_values() {
        let t = traj();
        let mut daq = DaqConfig::noiseless(100.0);
        daq.bits = 4;
        let sig = daq.capture(&t, &mut Ramp(0.0), 0).unwrap();
        let mut distinct: Vec<i64> = sig
            .channel(0)
            .iter()
            .map(|v| (v * 1e6).round() as i64)
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 17, "got {} levels", distinct.len());
    }

    #[test]
    fn config_validation() {
        let t = traj();
        let mut bad = DaqConfig::noiseless(0.0);
        assert!(bad.capture(&t, &mut Ramp(0.0), 0).is_err());
        bad = DaqConfig::noiseless(10.0);
        bad.frame_len = 0;
        assert!(bad.capture(&t, &mut Ramp(0.0), 0).is_err());
        bad = DaqConfig::noiseless(10.0);
        bad.bits = 1;
        assert!(bad.capture(&t, &mut Ramp(0.0), 0).is_err());
    }
}
