//! Side-channel sensor models: synthesizes the six analog side channels of
//! Table II from a simulated print trajectory.
//!
//! | ID  | Side channel        | Physical source we model                              |
//! |-----|---------------------|-------------------------------------------------------|
//! | ACC | Acceleration (6 ch) | printhead acceleration + gyro, motion vibration       |
//! | TMP | Temperature (1 ch)  | sensor die temperature: slow thermal state, no motion |
//! | MAG | Magnetic (3 ch)     | stepper coil fields ∝ joint activity + earth field    |
//! | AUD | Audio (2 ch)        | stepper step-rate tones + fan hum + ambient noise     |
//! | EPT | Elec. potential     | 60 Hz mains (dominant) + weak motor PWM coupling      |
//! | PWR | Power/current       | heater duty (dominant) + motor/fan load               |
//!
//! The qualitative properties the paper measures are built in: ACC/AUD are
//! strongly correlated with printer state; the *raw* EPT signal is useless
//! (mains-dominated) while its spectrogram is informative; TMP and PWR are
//! weakly correlated (the paper drops them after §VIII-B); MAG is noisy
//! but correctly shaped.
//!
//! The [`daq`] module models the acquisition chain itself — per-run gain
//! drift (why NSYNC needs gain-invariant distances), quantization, and
//! frame drops (one of the paper's named sources of time noise).
//!
//! # Example
//!
//! ```
//! use am_gcode::slicer::{slice_gear, SliceConfig};
//! use am_printer::{config::PrinterConfig, firmware::execute_program, noise::TimeNoise};
//! use am_sensors::{channel::SideChannel, daq::DaqConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let printer = PrinterConfig::ultimaker3();
//! let mut slice = SliceConfig::small_gear();
//! slice.center = am_gcode::geometry::Point2::new(100.0, 100.0);
//! let traj = execute_program(&slice_gear(&slice)?, &printer, &TimeNoise::disabled(), 0)?;
//! let daq = DaqConfig::noiseless(400.0);
//! let acc = SideChannel::Acc.capture(&traj, &printer, &daq, 0)?;
//! assert_eq!(acc.channels(), 6);
//! # Ok(())
//! # }
//! ```

pub mod channel;
pub mod daq;
pub mod faults;
pub mod interference;
pub mod models;
pub mod synth;

pub use channel::SideChannel;
pub use daq::DaqConfig;
pub use faults::{ChannelFault, FaultKind, FaultPlan};
pub use interference::Interference;
pub use synth::SensorModel;
