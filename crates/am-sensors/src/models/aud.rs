//! AUD: stereo microphone (AKG170 in the paper).
//!
//! The dominant acoustic sources on an FDM printer are the stepper motors,
//! which emit tones at their step rate (proportional to joint speed), plus
//! the part-cooling fan's hum and broadband ambient noise. The two stereo
//! channels hear the same sources with different gains (different
//! distances to each motor).

use crate::synth::SensorModel;
use am_printer::noise::gaussian;
use am_printer::trajectory::PrinterSample;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stereo microphone model.
#[derive(Debug)]
pub struct AudModel {
    rng: StdRng,
    motor_phase: [f64; 3],
    extruder_phase: f64,
    fan_phase: f64,
    t: f64,
    /// Tone frequency per unit joint speed (cycles per mm). Defaults keep
    /// tones under Nyquist for the scaled experiment sample rates.
    pub tone_cycles_per_mm: f64,
    /// Per-source stereo gains: `[motor0, motor1, motor2, extruder, fan]`
    /// for the left channel.
    pub left_gains: [f64; 5],
    /// Same for the right channel.
    pub right_gains: [f64; 5],
    /// Ambient noise floor.
    pub noise_sigma: f64,
}

impl AudModel {
    /// Creates the model with a reproducible seed.
    pub fn new(seed: u64) -> Self {
        AudModel {
            rng: StdRng::seed_from_u64(seed),
            motor_phase: [0.0; 3],
            extruder_phase: 0.0,
            fan_phase: 0.0,
            t: 0.0,
            tone_cycles_per_mm: 2.0,
            left_gains: [1.0, 0.7, 0.5, 0.6, 0.8],
            right_gains: [0.6, 1.0, 0.7, 0.5, 0.8],
            noise_sigma: 0.02,
        }
    }
}

impl SensorModel for AudModel {
    fn channels(&self) -> usize {
        2
    }

    fn sample(&mut self, state: &PrinterSample, dt: f64, out: &mut [f64]) {
        self.t += dt;
        let tau = std::f64::consts::TAU;
        let mut sources = [0.0f64; 5];
        #[allow(clippy::needless_range_loop)]
        for j in 0..3 {
            let speed = state.joint_velocities[j].abs();
            self.motor_phase[j] += tau * speed * self.tone_cycles_per_mm * dt;
            if self.motor_phase[j] > tau * 1e6 {
                self.motor_phase[j] -= tau * 1e6;
            }
            // A stopped motor is silent; amplitude grows then saturates.
            // The tone's phase is run-specific (time noise scrambles it),
            // but the broadband motor "whoosh" — modeled as the envelope
            // itself — is what correlates across runs of the same print.
            let env = (speed / 40.0).tanh();
            sources[j] = 0.25 * env + 0.15 * env * self.motor_phase[j].sin();
        }
        // Extruder tone.
        self.extruder_phase += tau * state.extrusion_rate.abs() * 25.0 * dt;
        sources[3] = 0.15 * (state.extrusion_rate.abs() / 2.0).tanh() * self.extruder_phase.sin();
        // Fan hum with a second harmonic.
        self.fan_phase += tau * 85.0 * dt;
        if self.fan_phase > tau * 1e6 {
            self.fan_phase -= tau * 1e6;
        }
        sources[4] =
            state.fan_duty * (0.12 * self.fan_phase.sin() + 0.05 * (2.0 * self.fan_phase).sin());

        let noise_l = self.noise_sigma * gaussian(&mut self.rng);
        let noise_r = self.noise_sigma * gaussian(&mut self.rng);
        out[0] = sources
            .iter()
            .zip(self.left_gains.iter())
            .map(|(s, g)| s * g)
            .sum::<f64>()
            + noise_l;
        out[1] = sources
            .iter()
            .zip(self.right_gains.iter())
            .map(|(s, g)| s * g)
            .sum::<f64>()
            + noise_r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rms_of(model: &mut AudModel, state: &PrinterSample, n: usize) -> f64 {
        let mut out = [0.0; 2];
        let mut acc = 0.0;
        for _ in 0..n {
            model.sample(state, 1.0 / 4000.0, &mut out);
            acc += out[0] * out[0];
        }
        (acc / n as f64).sqrt()
    }

    #[test]
    fn silent_when_idle_loud_when_printing() {
        let mut m = AudModel::new(1);
        let idle = rms_of(&mut m, &PrinterSample::default(), 4000);
        let printing = PrinterSample {
            joint_velocities: [50.0, 30.0, 0.0],
            extrusion_rate: 2.0,
            fan_duty: 1.0,
            ..Default::default()
        };
        let loud = rms_of(&mut m, &printing, 4000);
        assert!(loud > 5.0 * idle, "idle {idle}, printing {loud}");
    }

    #[test]
    fn stereo_channels_differ_but_correlate() {
        let mut m = AudModel::new(2);
        let printing = PrinterSample {
            joint_velocities: [50.0, 0.0, 0.0],
            ..Default::default()
        };
        let mut l = Vec::new();
        let mut r = Vec::new();
        let mut out = [0.0; 2];
        for _ in 0..4000 {
            m.sample(&printing, 1.0 / 4000.0, &mut out);
            l.push(out[0]);
            r.push(out[1]);
        }
        assert_ne!(l, r);
        let corr = am_dsp::metrics::pearson(&l, &r);
        assert!(corr > 0.8, "stereo correlation {corr}");
    }

    #[test]
    fn motor_tone_frequency_tracks_speed() {
        // Count mean-crossings of the dominant tone at two speeds (the
        // envelope offsets the waveform, so cross the mean, not zero).
        let crossings = |speed: f64| {
            let mut m = AudModel::new(3);
            m.noise_sigma = 0.0;
            let st = PrinterSample {
                joint_velocities: [speed, 0.0, 0.0],
                ..Default::default()
            };
            let mut out = [0.0; 2];
            let mut samples = Vec::with_capacity(4000);
            for _ in 0..4000 {
                m.sample(&st, 1.0 / 4000.0, &mut out);
                samples.push(out[0]);
            }
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let mut last = samples[0] - mean;
            let mut count = 0;
            for &s in &samples[1..] {
                let v = s - mean;
                if last < 0.0 && v >= 0.0 {
                    count += 1;
                }
                last = v;
            }
            count
        };
        let slow = crossings(20.0);
        let fast = crossings(40.0);
        assert!(
            (fast as f64 / slow as f64 - 2.0).abs() < 0.2,
            "slow {slow}, fast {fast}"
        );
    }
}
