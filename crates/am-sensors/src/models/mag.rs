//! MAG: 3-axis magnetometer near the steppers.
//!
//! Each motor's coil field couples into the magnetometer along a fixed
//! orientation; field strength grows with joint activity, with a
//! microstep ripple riding on top. Sampled at only 100 Hz (Table II), the
//! ripple aliases — reproducing the paper's observation that MAG's
//! `h_disp` "appears to have a lot of noise" while "the overall shape is
//! the same" as ACC/AUD.

use crate::synth::SensorModel;
use am_printer::noise::gaussian;
use am_printer::trajectory::PrinterSample;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Magnetometer model.
#[derive(Debug)]
pub struct MagModel {
    rng: StdRng,
    phase: [f64; 3],
    /// Earth field baseline (arbitrary units).
    pub earth: [f64; 3],
    /// Coupling direction of each motor into the 3 axes.
    pub coil_dirs: [[f64; 3]; 3],
    /// Field per unit of saturated joint speed.
    pub coil_gain: f64,
    /// Measurement noise.
    pub noise_sigma: f64,
}

impl MagModel {
    /// Creates the model with a reproducible seed.
    pub fn new(seed: u64) -> Self {
        MagModel {
            rng: StdRng::seed_from_u64(seed),
            phase: [0.0; 3],
            earth: [0.2, -0.1, 0.4],
            coil_dirs: [[1.0, 0.2, 0.1], [0.15, 1.0, 0.2], [0.1, 0.25, 1.0]],
            coil_gain: 0.5,
            noise_sigma: 0.05,
        }
    }
}

impl SensorModel for MagModel {
    fn channels(&self) -> usize {
        3
    }

    fn sample(&mut self, state: &PrinterSample, dt: f64, out: &mut [f64]) {
        out[..3].copy_from_slice(&self.earth);
        for j in 0..3 {
            let speed = state.joint_velocities[j].abs();
            // Saturating activity term + aliased microstep ripple.
            let activity = (speed / 30.0).tanh();
            self.phase[j] += std::f64::consts::TAU * speed * 4.0 * dt;
            if self.phase[j] > std::f64::consts::TAU * 1e6 {
                self.phase[j] -= std::f64::consts::TAU * 1e6;
            }
            let field = self.coil_gain * activity * (1.0 + 0.15 * self.phase[j].sin());
            for (o, dir) in out.iter_mut().zip(self.coil_dirs[j].iter()) {
                *o += dir * field;
            }
        }
        for v in out.iter_mut().take(3) {
            *v += self.noise_sigma * gaussian(&mut self.rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_reads_earth_field_plus_noise() {
        let mut m = MagModel::new(1);
        let mut out = [0.0; 3];
        let mut mean = [0.0; 3];
        for _ in 0..5000 {
            m.sample(&PrinterSample::default(), 0.01, &mut out);
            for (m, o) in mean.iter_mut().zip(out.iter()) {
                *m += o;
            }
        }
        for (i, mv) in mean.iter_mut().enumerate() {
            *mv /= 5000.0;
            assert!((*mv - m.earth[i]).abs() < 0.02, "axis {i}: {mv}");
        }
    }

    #[test]
    fn motor_activity_raises_field() {
        let mut m = MagModel::new(2);
        let mut out = [0.0; 3];
        let active = PrinterSample {
            joint_velocities: [60.0, 0.0, 0.0],
            ..Default::default()
        };
        let mut mean_x = 0.0;
        for _ in 0..5000 {
            m.sample(&active, 0.01, &mut out);
            mean_x += out[0];
        }
        mean_x /= 5000.0;
        // Earth x (0.2) + coil 0 coupling (1.0 * ~0.5 * activity ~ 1.0).
        assert!(mean_x > 0.5, "mean {mean_x}");
    }

    #[test]
    fn snr_is_modest() {
        // MAG should be noticeably noisier relative to signal than ACC —
        // noise sigma is a large fraction of the activity term.
        let m = MagModel::new(3);
        assert!(m.noise_sigma / m.coil_gain >= 0.05);
    }
}
