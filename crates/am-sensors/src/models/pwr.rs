//! PWR: clamp-on AC current sensor (SCT013) on the printer's mains lead.
//!
//! Desktop-printer power draw is dominated by the bang-bang heaters; the
//! motors add only a small, nearly speed-independent load. The paper
//! consequently finds PWR weakly correlated with motion and drops it after
//! §VIII-B.

use crate::synth::SensorModel;
use am_printer::noise::gaussian;
use am_printer::trajectory::PrinterSample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// AC current sensor model.
#[derive(Debug)]
pub struct PwrModel {
    rng: StdRng,
    mains_phase: f64,
    t: f64,
    /// Baseline electronics draw (A-ish units).
    pub base_load: f64,
    /// Hotend heater load.
    pub hotend_load: f64,
    /// Bed heater load.
    pub bed_load: f64,
    /// Fan load.
    pub fan_load: f64,
    /// Motor load at full speed (small by design).
    pub motor_load: f64,
    /// Noise floor.
    pub noise_sigma: f64,
}

impl PwrModel {
    /// Creates the model with a reproducible seed (random mains phase).
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mains_phase = rng.gen::<f64>() * std::f64::consts::TAU;
        PwrModel {
            rng,
            mains_phase,
            t: 0.0,
            base_load: 0.3,
            hotend_load: 2.0,
            bed_load: 1.4,
            fan_load: 0.1,
            motor_load: 0.15,
            noise_sigma: 0.02,
        }
    }
}

impl SensorModel for PwrModel {
    fn channels(&self) -> usize {
        1
    }

    fn sample(&mut self, state: &PrinterSample, dt: f64, out: &mut [f64]) {
        self.t += dt;
        let motor_activity: f64 = state
            .joint_velocities
            .iter()
            .map(|v| (v.abs() / 100.0).min(1.0))
            .sum::<f64>()
            / 3.0;
        let envelope = self.base_load
            + self.hotend_load * state.hotend_duty
            + self.bed_load * state.bed_duty
            + self.fan_load * state.fan_duty
            + self.motor_load * motor_activity;
        let carrier = (std::f64::consts::TAU * 60.0 * self.t + self.mains_phase).sin();
        out[0] = envelope * carrier + self.noise_sigma * gaussian(&mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rms(model: &mut PwrModel, state: &PrinterSample, n: usize) -> f64 {
        let mut out = [0.0];
        let mut acc = 0.0;
        for _ in 0..n {
            model.sample(state, 1.0 / 2000.0, &mut out);
            acc += out[0] * out[0];
        }
        (acc / n as f64).sqrt()
    }

    #[test]
    fn heater_dominates_motors() {
        let mut m = PwrModel::new(1);
        let heating = PrinterSample {
            hotend_duty: 1.0,
            ..Default::default()
        };
        let moving = PrinterSample {
            joint_velocities: [100.0, 100.0, 100.0],
            ..Default::default()
        };
        let r_heat = rms(&mut m, &heating, 4000);
        let r_move = rms(&mut m, &moving, 4000);
        let r_idle = rms(&mut m, &PrinterSample::default(), 4000);
        assert!(r_heat > 3.0 * r_move, "heat {r_heat} vs move {r_move}");
        assert!(r_move > r_idle, "motors do add a little load");
    }
}
