//! ACC: 6-channel MPU9250 IMU on the printhead (3-axis accelerometer +
//! 3-axis gyro).
//!
//! Channels 0–2 carry the tool acceleration plus motion-induced vibration
//! (steppers shake the carriage roughly in proportion to speed); channels
//! 3–5 model the gyro, which on a gantry picks up frame twist coupled to
//! the same vibration. This is the channel the paper finds most strongly
//! correlated with printer state.

use crate::synth::SensorModel;
use am_printer::noise::gaussian;
use am_printer::trajectory::PrinterSample;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Printhead IMU model.
#[derive(Debug)]
pub struct AccModel {
    rng: StdRng,
    phase: [f64; 3],
    lp_state: [f64; 3],
    /// Vibration tone frequency per unit joint speed (cycles per mm).
    pub vib_cycles_per_mm: f64,
    /// Vibration amplitude per unit joint speed.
    pub vib_gain: f64,
    /// White-noise floor (g-scale units).
    pub noise_sigma: f64,
    /// Mechanical/anti-alias bandwidth (Hz): the carriage damping plus
    /// the DAQ's input filter smear acceleration transients, which is
    /// what makes windows from *different* runs correlate despite
    /// millisecond-scale time noise.
    pub bandwidth_hz: f64,
}

impl AccModel {
    /// Creates the model with a reproducible seed.
    pub fn new(seed: u64) -> Self {
        AccModel {
            rng: StdRng::seed_from_u64(seed),
            phase: [0.0; 3],
            lp_state: [0.0; 3],
            vib_cycles_per_mm: 1.6,
            vib_gain: 0.0008,
            noise_sigma: 0.002,
            bandwidth_hz: 12.0,
        }
    }
}

impl SensorModel for AccModel {
    fn channels(&self) -> usize {
        6
    }

    fn sample(&mut self, state: &PrinterSample, dt: f64, out: &mut [f64]) {
        // Tool acceleration in g-ish units (mm/s² -> scaled), low-passed
        // by the mechanical/anti-alias bandwidth.
        let alpha = 1.0 - (-std::f64::consts::TAU * self.bandwidth_hz * dt).exp();
        let raw_acc = [
            state.acceleration.x * 1e-3,
            state.acceleration.y * 1e-3,
            state.acceleration.z * 1e-3 + 1.0, // gravity offset on Z
        ];
        let mut acc = [0.0f64; 3];
        for (st, (raw, a)) in self
            .lp_state
            .iter_mut()
            .zip(raw_acc.iter().zip(acc.iter_mut()))
        {
            *st += alpha * (raw - *st);
            *a = *st;
        }
        // Per-joint vibration tones (small, phase-random across runs).
        let mut vib = [0.0f64; 3];
        #[allow(clippy::needless_range_loop)]
        for j in 0..3 {
            let speed = state.joint_velocities[j].abs();
            self.phase[j] += std::f64::consts::TAU * speed * self.vib_cycles_per_mm * dt;
            if self.phase[j] > std::f64::consts::TAU * 1e6 {
                self.phase[j] -= std::f64::consts::TAU * 1e6;
            }
            vib[j] = self.vib_gain * speed * self.phase[j].sin();
        }
        // A speed-following component: carriage tilt/centripetal load
        // tracks velocity magnitude — smooth, run-correlated content.
        let speed_env = [
            0.01 * state.velocity.x.abs(),
            0.01 * state.velocity.y.abs(),
            0.01 * state.velocity.z.abs(),
        ];
        for i in 0..3 {
            out[i] = acc[i] + speed_env[i] + vib[i] + self.noise_sigma * gaussian(&mut self.rng);
        }
        // Gyro: frame twist coupled to the filtered acceleration + a bit
        // of vibration + noise.
        for i in 0..3 {
            out[3 + i] = 0.3 * acc[(i + 1) % 3]
                + 0.2 * speed_env[(i + 2) % 3]
                + 0.1 * vib[(i + 1) % 3]
                + self.noise_sigma * gaussian(&mut self.rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_motion::Vec3;

    fn idle_sample() -> PrinterSample {
        PrinterSample {
            t: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn idle_output_is_near_gravity_and_noise() {
        let mut m = AccModel::new(1);
        let mut out = [0.0; 6];
        // Let the low-pass settle, then average.
        for _ in 0..500 {
            m.sample(&idle_sample(), 1e-3, &mut out);
        }
        let mut zmean = 0.0;
        for _ in 0..1000 {
            m.sample(&idle_sample(), 1e-3, &mut out);
            zmean += out[2];
        }
        zmean /= 1000.0;
        assert!((zmean - 1.0).abs() < 0.01, "z mean {zmean}");
    }

    #[test]
    fn moving_head_produces_vibration_energy() {
        let mut m = AccModel::new(1);
        let mut out = [0.0; 6];
        let moving = PrinterSample {
            velocity: Vec3::new(60.0, 0.0, 0.0),
            joint_velocities: [60.0, 0.0, 0.0],
            ..idle_sample()
        };
        let mut energy_moving = 0.0;
        let mut energy_idle = 0.0;
        for _ in 0..2000 {
            m.sample(&moving, 1e-3, &mut out);
            energy_moving += out[0] * out[0];
            m.sample(&idle_sample(), 1e-3, &mut out);
            energy_idle += out[0] * out[0];
        }
        assert!(
            energy_moving > 3.0 * energy_idle,
            "moving {energy_moving} vs idle {energy_idle}"
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = AccModel::new(9);
        let mut b = AccModel::new(9);
        let mut oa = [0.0; 6];
        let mut ob = [0.0; 6];
        let s = idle_sample();
        for _ in 0..10 {
            a.sample(&s, 1e-3, &mut oa);
            b.sample(&s, 1e-3, &mut ob);
            assert_eq!(oa, ob);
        }
    }
}
