//! EPT: electric-potential probe (the paper's cap-removed AKG170).
//!
//! The raw signal is dominated by the 60 Hz mains field (with a random
//! per-run phase) — which is why the paper finds the **raw** EPT signal
//! useless for synchronization ("mostly composed of a 60 Hz power
//! component, which is not correlated with the state of the printer")
//! while its **spectrogram** works: the weak motor PWM coupling occupies
//! other bins and "all channels are treated with the same level of
//! importance".

use crate::synth::SensorModel;
use am_printer::noise::gaussian;
use am_printer::trajectory::PrinterSample;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Electric-potential probe model.
#[derive(Debug)]
pub struct EptModel {
    rng: StdRng,
    mains_phase: f64,
    motor_phase: [f64; 3],
    t: f64,
    /// Mains fundamental amplitude (dominant).
    pub mains_amp: f64,
    /// Motor-coupling amplitude (weak).
    pub motor_amp: f64,
    /// Noise floor.
    pub noise_sigma: f64,
}

impl EptModel {
    /// Creates the model with a reproducible seed; the mains phase is
    /// random per run (uncorrelated with the print).
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mains_phase = rng.gen::<f64>() * std::f64::consts::TAU;
        EptModel {
            rng,
            mains_phase,
            motor_phase: [0.0; 3],
            t: 0.0,
            mains_amp: 1.0,
            motor_amp: 0.15,
            noise_sigma: 0.01,
        }
    }
}

impl SensorModel for EptModel {
    fn channels(&self) -> usize {
        1
    }

    fn sample(&mut self, state: &PrinterSample, dt: f64, out: &mut [f64]) {
        self.t += dt;
        let tau = std::f64::consts::TAU;
        let mains = self.mains_amp
            * ((tau * 60.0 * self.t + self.mains_phase).sin()
                + 0.25 * (tau * 180.0 * self.t + 3.0 * self.mains_phase).sin());
        let mut motor = 0.0;
        for j in 0..3 {
            let speed = state.joint_velocities[j].abs();
            self.motor_phase[j] += tau * speed * 3.0 * dt;
            if self.motor_phase[j] > tau * 1e6 {
                self.motor_phase[j] -= tau * 1e6;
            }
            let env = (speed / 40.0).tanh();
            motor += self.motor_amp * env * (1.0 + self.motor_phase[j].sin());
        }
        // Heater switching couples a 120 Hz buzz when the element is on.
        let heater = 0.005 * state.hotend_duty * (tau * 120.0 * self.t).sin();
        out[0] = mains + motor + heater + self.noise_sigma * gaussian(&mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mains_dominates_raw_signal() {
        let mut m = EptModel::new(1);
        let printing = PrinterSample {
            joint_velocities: [50.0, 50.0, 0.0],
            hotend_duty: 1.0,
            ..Default::default()
        };
        let mut out = [0.0];
        let mut with_motion = 0.0;
        for _ in 0..8000 {
            m.sample(&printing, 1.0 / 8000.0, &mut out);
            with_motion += out[0] * out[0];
        }
        let mut m2 = EptModel::new(1);
        let mut idle = 0.0;
        for _ in 0..8000 {
            m2.sample(&PrinterSample::default(), 1.0 / 8000.0, &mut out);
            idle += out[0] * out[0];
        }
        // Motion adds only a small fraction of total energy.
        let ratio = with_motion / idle;
        assert!(ratio < 1.2, "motion changed EPT energy by {ratio}x");
        assert!(idle > 1000.0, "mains should carry most energy");
    }

    #[test]
    fn mains_phase_differs_across_runs() {
        let a = EptModel::new(1).mains_phase;
        let b = EptModel::new(2).mains_phase;
        assert!((a - b).abs() > 1e-6);
    }
}
