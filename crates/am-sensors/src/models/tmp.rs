//! TMP: the IMU's internal die-temperature channel.
//!
//! The die warms slowly with the ambient air around the hotend and drifts.
//! It is *weakly* correlated with the printer's motion state — exactly why
//! the paper drops this channel after §VIII-B. Keeping the weakness
//! faithful matters: NSYNC should fail to synchronize on TMP.

use crate::synth::SensorModel;
use am_printer::noise::gaussian;
use am_printer::trajectory::PrinterSample;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// IMU die-temperature model.
#[derive(Debug)]
pub struct TmpModel {
    rng: StdRng,
    die_temp: f64,
    drift: f64,
    /// Coupling from hotend temperature into the die (dimensionless).
    pub hotend_coupling: f64,
    /// Measurement noise (deg C).
    pub noise_sigma: f64,
}

impl TmpModel {
    /// Creates the model with a reproducible seed.
    pub fn new(seed: u64) -> Self {
        TmpModel {
            rng: StdRng::seed_from_u64(seed),
            die_temp: 25.0,
            drift: 0.0,
            hotend_coupling: 0.04,
            noise_sigma: 0.05,
        }
    }
}

impl SensorModel for TmpModel {
    fn channels(&self) -> usize {
        1
    }

    fn sample(&mut self, state: &PrinterSample, dt: f64, out: &mut [f64]) {
        // First-order approach to (ambient + coupled hotend heat).
        let target = 25.0 + self.hotend_coupling * (state.hotend_temp - 25.0);
        let tau = 40.0;
        self.die_temp += (target - self.die_temp) / tau * dt;
        // Slow random drift (integrated noise, band-limited).
        self.drift += 0.02 * gaussian(&mut self.rng) * dt.sqrt();
        self.drift *= 1.0 - 0.001 * dt;
        out[0] = self.die_temp + self.drift + self.noise_sigma * gaussian(&mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warms_toward_coupled_target() {
        let mut m = TmpModel::new(1);
        let hot = PrinterSample {
            hotend_temp: 205.0,
            ..Default::default()
        };
        let mut out = [0.0];
        for _ in 0..200_000 {
            m.sample(&hot, 0.01, &mut out);
        }
        let target = 25.0 + 0.04 * 180.0;
        assert!((out[0] - target).abs() < 2.0, "die {} vs {target}", out[0]);
    }

    #[test]
    fn motion_barely_moves_the_needle() {
        // Two identical models, one fed motion, one idle: outputs stay
        // within noise of each other (weak motion correlation).
        let mut a = TmpModel::new(2);
        let mut b = TmpModel::new(2);
        let idle = PrinterSample::default();
        let moving = PrinterSample {
            velocity: am_motion::Vec3::new(100.0, 0.0, 0.0),
            joint_velocities: [100.0, 100.0, 100.0],
            ..Default::default()
        };
        let (mut oa, mut ob) = ([0.0], [0.0]);
        let mut max_diff = 0.0f64;
        for _ in 0..5000 {
            a.sample(&idle, 1e-3, &mut oa);
            b.sample(&moving, 1e-3, &mut ob);
            max_diff = max_diff.max((oa[0] - ob[0]).abs());
        }
        assert!(max_diff < 1.0, "motion leaked into TMP: {max_diff}");
    }
}
