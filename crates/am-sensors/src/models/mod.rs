//! The six physical sensor models of Table II.

pub mod acc;
pub mod aud;
pub mod ept;
pub mod mag;
pub mod pwr;
pub mod tmp;

pub use acc::AccModel;
pub use aud::AudModel;
pub use ept::EptModel;
pub use mag::MagModel;
pub use pwr::PwrModel;
pub use tmp::TmpModel;
