//! The [`SideChannel`] enum: one variant per row of Table II.

use crate::daq::DaqConfig;
use crate::models::{AccModel, AudModel, EptModel, MagModel, PwrModel, TmpModel};
use crate::synth::SensorModel;
use am_dsp::{DspError, Signal};
use am_printer::config::PrinterConfig;
use am_printer::trajectory::PrintTrajectory;
use serde::{Deserialize, Serialize};

/// The six side channels of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SideChannel {
    /// Acceleration (MPU9250, 6 channels).
    Acc,
    /// Temperature (MPU9250 die, 1 channel).
    Tmp,
    /// Magnetic field (MPU9250, 3 channels).
    Mag,
    /// Audio (AKG170, 2 channels).
    Aud,
    /// Electric potential (modified AKG170, 1 channel).
    Ept,
    /// Power / AC current (SCT013, 1 channel).
    Pwr,
}

impl SideChannel {
    /// All six channels, in Table II order.
    pub fn all() -> [SideChannel; 6] {
        [
            SideChannel::Acc,
            SideChannel::Tmp,
            SideChannel::Mag,
            SideChannel::Aud,
            SideChannel::Ept,
            SideChannel::Pwr,
        ]
    }

    /// The four channels the paper keeps after §VIII-B (TMP and PWR are
    /// dropped as weakly correlated with printer state).
    pub fn kept() -> [SideChannel; 4] {
        [
            SideChannel::Acc,
            SideChannel::Mag,
            SideChannel::Aud,
            SideChannel::Ept,
        ]
    }

    /// Table II's ID string.
    pub fn id(&self) -> &'static str {
        match self {
            SideChannel::Acc => "ACC",
            SideChannel::Tmp => "TMP",
            SideChannel::Mag => "MAG",
            SideChannel::Aud => "AUD",
            SideChannel::Ept => "EPT",
            SideChannel::Pwr => "PWR",
        }
    }

    /// Table II's sampling rate (Hz) for this channel at full (paper)
    /// scale.
    pub fn paper_fs(&self) -> f64 {
        match self {
            SideChannel::Acc => 4000.0,
            SideChannel::Tmp => 4000.0,
            SideChannel::Mag => 100.0,
            SideChannel::Aud => 48_000.0,
            SideChannel::Ept => 96_000.0,
            SideChannel::Pwr => 12_000.0,
        }
    }

    /// Table II's ADC resolution (bits).
    pub fn paper_bits(&self) -> u32 {
        match self {
            SideChannel::Acc | SideChannel::Tmp | SideChannel::Mag => 16,
            SideChannel::Aud | SideChannel::Ept | SideChannel::Pwr => 24,
        }
    }

    /// Number of recorded channels (Table II's CHs column).
    pub fn channel_count(&self) -> usize {
        match self {
            SideChannel::Acc => 6,
            SideChannel::Tmp => 1,
            SideChannel::Mag => 3,
            SideChannel::Aud => 2,
            SideChannel::Ept => 1,
            SideChannel::Pwr => 1,
        }
    }

    /// Builds the physical sensor model for this channel.
    ///
    /// The printer config is accepted so models can, in principle,
    /// specialize per machine; the current models are machine-agnostic
    /// because joint velocities already encode the kinematics.
    pub fn model(&self, _printer: &PrinterConfig, seed: u64) -> Box<dyn SensorModel> {
        // Offset the seed per channel so one run's channels are
        // independently noisy.
        let s = seed ^ (*self as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match self {
            SideChannel::Acc => Box::new(AccModel::new(s)),
            SideChannel::Tmp => Box::new(TmpModel::new(s)),
            SideChannel::Mag => Box::new(MagModel::new(s)),
            SideChannel::Aud => Box::new(AudModel::new(s)),
            SideChannel::Ept => Box::new(EptModel::new(s)),
            SideChannel::Pwr => Box::new(PwrModel::new(s)),
        }
    }

    /// Synthesizes and captures this side channel for a finished print.
    ///
    /// # Errors
    ///
    /// Propagates [`DspError`] from the DAQ (invalid config).
    pub fn capture(
        &self,
        trajectory: &PrintTrajectory,
        printer: &PrinterConfig,
        daq: &DaqConfig,
        seed: u64,
    ) -> Result<Signal, DspError> {
        let mut model = self.model(printer, seed);
        daq.capture_boxed(trajectory, &mut model, seed)
    }
}

impl DaqConfig {
    /// Object-safe capture entry point used by [`SideChannel::capture`].
    ///
    /// # Errors
    ///
    /// Same as [`DaqConfig::capture`].
    pub fn capture_boxed(
        &self,
        trajectory: &PrintTrajectory,
        model: &mut Box<dyn SensorModel>,
        seed: u64,
    ) -> Result<Signal, DspError> {
        struct Shim<'a>(&'a mut dyn SensorModel);
        impl SensorModel for Shim<'_> {
            fn channels(&self) -> usize {
                self.0.channels()
            }
            fn sample(
                &mut self,
                state: &am_printer::trajectory::PrinterSample,
                dt: f64,
                out: &mut [f64],
            ) {
                self.0.sample(state, dt, out)
            }
        }
        self.capture(trajectory, &mut Shim(model.as_mut()), seed)
    }
}

impl std::fmt::Display for SideChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use am_gcode::slicer::{slice_gear, SliceConfig};
    use am_printer::{firmware::execute_program, noise::TimeNoise};

    #[test]
    fn table2_constants() {
        assert_eq!(SideChannel::all().len(), 6);
        assert_eq!(SideChannel::kept().len(), 4);
        assert_eq!(SideChannel::Acc.channel_count(), 6);
        assert_eq!(SideChannel::Aud.paper_fs(), 48_000.0);
        assert_eq!(SideChannel::Ept.paper_fs(), 96_000.0);
        assert_eq!(SideChannel::Mag.paper_bits(), 16);
        assert_eq!(SideChannel::Pwr.paper_bits(), 24);
        assert_eq!(SideChannel::Tmp.id(), "TMP");
    }

    #[test]
    fn capture_all_channels_small() {
        let printer = PrinterConfig::ultimaker3();
        let traj = execute_program(
            &slice_gear(&SliceConfig::small_gear()).unwrap(),
            &printer,
            &TimeNoise::disabled(),
            0,
        )
        .unwrap();
        for ch in SideChannel::all() {
            let daq = DaqConfig::noiseless(200.0);
            let sig = ch.capture(&traj, &printer, &daq, 1).unwrap();
            assert_eq!(sig.channels(), ch.channel_count(), "{ch}");
            assert!(sig.len() > 100, "{ch}");
        }
    }

    #[test]
    fn different_channels_get_different_noise_streams() {
        let printer = PrinterConfig::ultimaker3();
        let traj = execute_program(
            &slice_gear(&SliceConfig::small_gear()).unwrap(),
            &printer,
            &TimeNoise::disabled(),
            0,
        )
        .unwrap();
        let daq = DaqConfig::realistic(200.0, 16);
        let a = SideChannel::Ept.capture(&traj, &printer, &daq, 1).unwrap();
        let b = SideChannel::Pwr.capture(&traj, &printer, &daq, 1).unwrap();
        // Same seed, different channels: distinct signals.
        assert_ne!(a.channel(0)[..50], b.channel(0)[..50]);
    }
}
