//! Hot-reloadable fleet configuration: declarative manifests, diffing,
//! and live application.
//!
//! A farm's printer roster changes while prints are running — machines
//! join, retire, or get re-trained models after maintenance. Restarting
//! the fleet for that would reset every in-flight verdict stream, so
//! reconfiguration is expressed as data instead:
//!
//! 1. A [`FleetManifest`] declares the desired state: which printers
//!    exist and which [`SpecRegistry`](crate::SpecRegistry) key each one
//!    runs.
//! 2. [`FleetManifest::diff`] against the previous manifest yields a
//!    [`ReloadPlan`]: printers to add, drop, and swap specs for.
//! 3. [`Fleet::apply`](crate::Fleet::apply) executes the plan through
//!    the existing shard-command FIFO — registrations, detachments, and
//!    spec swaps ride the same queues as chunks, so a printer that is
//!    *not* named by the plan never observes the reload at all, and a
//!    swapped printer's verdict stream continues (its detector adopts
//!    the new spec in place via
//!    [`StreamingIds::adopt_spec`](nsync::StreamingIds::adopt_spec),
//!    keeping windows seen, health, and the CADHD accumulator).
//!
//! The manifest text format is deliberately trivial — one printer per
//! line, comment and blank lines ignored — so it can live in a file a
//! farm controller rewrites and a `SIGHUP`-style handler re-parses:
//!
//! ```text
//! # printer-id  spec-key
//! printer 1 um3/acc
//! printer 2 um3/pwr
//! ```

use crate::{FleetError, PrinterId};
use std::collections::BTreeMap;

/// Desired fleet state: printer → spec-registry key. Ordered so diffs,
/// plans, and reports are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetManifest {
    entries: BTreeMap<PrinterId, String>,
}

/// A manifest line that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// 1-based line number.
    pub line: usize,
    /// What was wrong with it.
    pub reason: String,
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "manifest line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ManifestError {}

impl FleetManifest {
    /// An empty manifest (diffing a roster against it plans a full
    /// start-up; diffing it against a roster plans a full drain).
    pub fn new() -> FleetManifest {
        FleetManifest::default()
    }

    /// Declares (or re-declares) a printer's spec key.
    pub fn assign(&mut self, printer: PrinterId, key: &str) {
        self.entries.insert(printer, key.to_string());
    }

    /// Parses the text format: `printer <id> <spec-key>` per line,
    /// blank lines and `#` comments ignored. A printer declared twice
    /// is an error — silently keeping either line would mask a
    /// controller bug.
    ///
    /// # Errors
    ///
    /// A [`ManifestError`] naming the first offending line.
    pub fn parse(text: &str) -> Result<FleetManifest, ManifestError> {
        let mut manifest = FleetManifest::new();
        for (index, raw) in text.lines().enumerate() {
            let line = index + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut parts = content.split_whitespace();
            let (kw, id, key) = (parts.next(), parts.next(), parts.next());
            if kw != Some("printer") {
                return Err(ManifestError {
                    line,
                    reason: format!("expected `printer <id> <spec-key>`, got `{content}`"),
                });
            }
            let id: u64 = id
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ManifestError {
                    line,
                    reason: format!("printer id must be a u64, got `{}`", id.unwrap_or("")),
                })?;
            let Some(key) = key else {
                return Err(ManifestError {
                    line,
                    reason: "missing spec key".to_string(),
                });
            };
            if parts.next().is_some() {
                return Err(ManifestError {
                    line,
                    reason: "trailing tokens after spec key".to_string(),
                });
            }
            let printer = PrinterId(id);
            if manifest.entries.contains_key(&printer) {
                return Err(ManifestError {
                    line,
                    reason: format!("{printer} declared twice"),
                });
            }
            manifest.assign(printer, key);
        }
        Ok(manifest)
    }

    /// The declared printers and their spec keys, in id order.
    pub fn entries(&self) -> impl Iterator<Item = (PrinterId, &str)> {
        self.entries.iter().map(|(p, k)| (*p, k.as_str()))
    }

    /// The spec key declared for `printer`, if any.
    pub fn key_of(&self, printer: PrinterId) -> Option<&str> {
        self.entries.get(&printer).map(String::as_str)
    }

    /// Number of declared printers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no printers are declared.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The plan that turns `self` (the running state) into `next` (the
    /// desired state): printers only in `next` are added, printers only
    /// in `self` are dropped, printers in both whose key changed get a
    /// spec swap. Printers with an unchanged key are untouched — the
    /// whole point of reloading at this granularity.
    pub fn diff(&self, next: &FleetManifest) -> ReloadPlan {
        let mut plan = ReloadPlan::default();
        for (printer, key) in &next.entries {
            match self.entries.get(printer) {
                None => plan.add.push((*printer, key.clone())),
                Some(old) if old != key => plan.swap.push((*printer, key.clone())),
                Some(_) => {}
            }
        }
        for printer in self.entries.keys() {
            if !next.entries.contains_key(printer) {
                plan.drop.push(*printer);
            }
        }
        plan
    }
}

/// The delta between two manifests, ready for
/// [`Fleet::apply`](crate::Fleet::apply). All lists are in printer-id
/// order (built from ordered manifests).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReloadPlan {
    /// Printers to register, with their spec keys.
    pub add: Vec<(PrinterId, String)>,
    /// Printers to detach.
    pub drop: Vec<PrinterId>,
    /// Printers whose detector should adopt a different spec in place.
    pub swap: Vec<(PrinterId, String)>,
}

impl ReloadPlan {
    /// Total operations in the plan.
    pub fn len(&self) -> usize {
        self.add.len() + self.drop.len() + self.swap.len()
    }

    /// Whether the plan is a no-op.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What [`Fleet::apply`](crate::Fleet::apply) actually did. Failures
/// are per-printer and non-fatal: one bad entry (unknown spec key,
/// duplicate id) must not abort the rest of a reload.
#[derive(Debug, Default)]
pub struct ReloadReport {
    /// Printers registered.
    pub added: Vec<PrinterId>,
    /// Printers detached.
    pub dropped: Vec<PrinterId>,
    /// Printers whose spec swap was *enqueued* (adoption happens on the
    /// shard thread; a shape-mismatched spec is rejected there and
    /// counted in
    /// [`ShardStats::spec_swap_failures`](crate::ShardStats::spec_swap_failures)).
    pub swapped: Vec<PrinterId>,
    /// Entries that failed fleet-side, with why.
    pub errors: Vec<(PrinterId, FleetError)>,
}

impl ReloadReport {
    /// Whether every entry applied cleanly.
    pub fn clean(&self) -> bool {
        self.errors.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_diff_roundtrip() {
        let old = FleetManifest::parse(
            "# roster\nprinter 1 um3/acc\nprinter 2 um3/pwr  # inline comment\nprinter 3 um3/acc\n",
        )
        .unwrap();
        assert_eq!(old.len(), 3);
        assert_eq!(old.key_of(PrinterId(2)), Some("um3/pwr"));
        let new = FleetManifest::parse("printer 2 um3/acc\nprinter 3 um3/acc\nprinter 4 um3/pwr\n")
            .unwrap();
        let plan = old.diff(&new);
        assert_eq!(plan.add, vec![(PrinterId(4), "um3/pwr".to_string())]);
        assert_eq!(plan.drop, vec![PrinterId(1)]);
        assert_eq!(plan.swap, vec![(PrinterId(2), "um3/acc".to_string())]);
        assert_eq!(plan.len(), 3);
        assert!(old.diff(&old).is_empty());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for (text, want) in [
            ("printers 1 k", "expected"),
            ("printer x k", "u64"),
            ("printer 1", "missing spec key"),
            ("printer 1 k extra", "trailing"),
            ("printer 1 a\nprinter 1 b", "twice"),
        ] {
            let err = FleetManifest::parse(text).unwrap_err();
            assert!(err.reason.contains(want), "{text:?} → {err}");
        }
    }
}
