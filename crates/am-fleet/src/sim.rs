//! Deterministic simulated chunk sources for fleet drills.
//!
//! Builds the small-profile experiment dataset once (seeded `am-sensors`
//! synthesis via `am-dataset`), trains one [`StreamSpec`] per side
//! channel into a [`SpecRegistry`], and hands out a per-printer
//! [`PrinterScript`] — the exact chunk sequence that printer streams.
//! Everything is a pure function of ([`SimConfig::seed`], printer id),
//! so the `fleet_monitor` example, the `fleet_soak` benchmark, and the
//! determinism suite all replay identical traffic, and any printer's
//! fleet verdict can be checked against a standalone detector fed the
//! same script.

use crate::registry::SpecRegistry;
use crate::PrinterId;
use am_dataset::{ExperimentSpec, RunRole, TrajectorySet};
use am_dsp::Signal;
use am_printer::config::PrinterModel;
use am_sensors::channel::SideChannel;
use am_sensors::faults::FaultPlan;
use nsync::prelude::{DwmSynchronizer, IdsBuilder};
use nsync::{CalibrationConfig, FusedSpec, FusionPolicy, StreamSpec};
use std::sync::Arc;

/// Failures while building the simulated fleet.
#[derive(Debug)]
pub enum SimError {
    /// Dataset generation or capture failed.
    Dataset(am_dataset::DatasetError),
    /// Training or detector construction failed.
    Nsync(nsync::NsyncError),
    /// Fault-plan application failed.
    Dsp(am_dsp::DspError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Dataset(e) => write!(f, "dataset: {e}"),
            SimError::Nsync(e) => write!(f, "nsync: {e}"),
            SimError::Dsp(e) => write!(f, "dsp: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Dataset(e) => Some(e),
            SimError::Nsync(e) => Some(e),
            SimError::Dsp(e) => Some(e),
        }
    }
}

impl From<am_dataset::DatasetError> for SimError {
    fn from(e: am_dataset::DatasetError) -> Self {
        SimError::Dataset(e)
    }
}
impl From<nsync::NsyncError> for SimError {
    fn from(e: nsync::NsyncError) -> Self {
        SimError::Nsync(e)
    }
}
impl From<am_dsp::DspError> for SimError {
    fn from(e: am_dsp::DspError) -> Self {
        SimError::Dsp(e)
    }
}

/// Simulated-fleet knobs. All traffic derives deterministically from
/// `seed` and the printer id — the printer *count* does not change any
/// individual printer's script.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Experiment base seed (drives synthesis, print selection, and
    /// fault plans).
    pub seed: u64,
    /// DAQ frame length each printer streams per chunk, seconds.
    pub chunk_seconds: f64,
    /// Fraction of printers streaming an attacked print (0..=1).
    pub malicious_fraction: f64,
    /// Fraction of printers whose sensors degrade mid-print (0..=1): a
    /// seeded [`FaultPlan`] (NaN gaps, stuck values, drift, noise
    /// bursts) corrupts their stream so quarantine and resync paths are
    /// exercised under fleet load.
    pub fault_fraction: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 7,
            chunk_seconds: 0.25,
            malicious_fraction: 0.25,
            fault_fraction: 0.0625,
        }
    }
}

/// The deterministic traffic of one simulated printer.
#[derive(Debug, Clone)]
pub struct PrinterScript {
    /// The printer.
    pub printer: PrinterId,
    /// The registry key of the trained model this printer runs against.
    pub key: String,
    /// The chunks, in stream order (DAQ frames of
    /// [`SimConfig::chunk_seconds`]).
    pub chunks: Vec<Signal>,
    /// Whether the scripted print is one of the Table I attacks.
    pub malicious: bool,
    /// Which Table I attack, when [`PrinterScript::malicious`] (for
    /// per-attack recall accounting).
    pub attack: Option<String>,
    /// Whether a [`FaultPlan`] corrupted the stream.
    pub faulted: bool,
}

/// The deterministic multi-lane traffic of one simulated printer: the
/// *same* scripted print observed through every [`SIM_CHANNELS`] side
/// channel at once, for cross-channel fusion drills.
#[derive(Debug, Clone)]
pub struct FusedScript {
    /// The printer.
    pub printer: PrinterId,
    /// Per-lane chunk sequences, in [`SIM_CHANNELS`] order (index =
    /// fused lane index).
    pub lanes: Vec<Vec<Signal>>,
    /// Whether the scripted print is one of the Table I attacks.
    pub malicious: bool,
    /// Which Table I attack, when [`FusedScript::malicious`].
    pub attack: Option<String>,
    /// Whether a [`FaultPlan`] corrupted the stream (every lane is
    /// corrupted, with an independent per-lane plan).
    pub faulted: bool,
}

struct ChannelSim {
    key: String,
    benign: Vec<Signal>,
    malicious: Vec<Signal>,
}

/// A trained fleet-in-a-box: shared model registry plus deterministic
/// per-printer chunk scripts.
pub struct FleetSim {
    cfg: SimConfig,
    registry: SpecRegistry,
    channels: Vec<ChannelSim>,
    /// Attack label of each malicious pool entry (aligned across
    /// channels: every channel captures the same runs in the same
    /// order).
    attacks: Vec<String>,
}

/// The side channels the simulated fleet mixes (printers alternate by
/// id): triaxial acceleration and AC power draw — the paper's strongest
/// and cheapest channels respectively.
pub const SIM_CHANNELS: [SideChannel; 2] = [SideChannel::Acc, SideChannel::Pwr];

fn mix(seed: u64, id: u64, salt: u64) -> u64 {
    let mut x = seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt;
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// `true` for a deterministic `fraction` of (seed, id) pairs.
fn coin(seed: u64, id: u64, salt: u64, fraction: f64) -> bool {
    (mix(seed, id, salt) % 10_000) < (fraction.clamp(0.0, 1.0) * 10_000.0) as u64
}

impl FleetSim {
    /// Generates the small-profile UM3 dataset, captures
    /// [`SIM_CHANNELS`], and trains one spec per channel (registry keys
    /// `"um3/acc"`, `"um3/pwr"`).
    ///
    /// # Errors
    ///
    /// Propagates dataset generation and training failures.
    pub fn build(cfg: SimConfig) -> Result<FleetSim, SimError> {
        let spec = ExperimentSpec {
            base_seed: cfg.seed,
            ..ExperimentSpec::small(PrinterModel::Um3)
        };
        let set = TrajectorySet::generate(spec)?;
        Self::build_from_set(cfg, &set)
    }

    /// Like [`FleetSim::build`], but over an already-materialized
    /// [`TrajectorySet`] — the scenario zoo's entry point: any registry
    /// row (firmware attacks, CoreXY kinematics, stressor overlays)
    /// becomes fleet traffic without the sim re-deriving the dataset.
    /// Registry keys derive from the set's printer (`"um3/acc"`,
    /// `"rm3/pwr"`, …).
    ///
    /// Sets without malicious runs are valid: every printer's malicious
    /// coin then lands benign, so benign-only stressor rows exercise
    /// pure false-alarm pressure.
    ///
    /// # Errors
    ///
    /// Propagates capture and training failures.
    pub fn build_from_set(cfg: SimConfig, set: &TrajectorySet) -> Result<FleetSim, SimError> {
        let params = set.spec.profile.dwm_params(set.spec.printer);
        let machine = set.spec.printer.short_name().to_lowercase();
        let registry = SpecRegistry::new();
        let mut channels = Vec::new();
        let mut attacks = Vec::new();
        for channel in SIM_CHANNELS {
            let captures = set.capture_channel(channel)?;
            let reference = captures
                .iter()
                .find(|c| matches!(c.role, RunRole::Reference))
                .expect("dataset always contains the reference run")
                .signal
                .clone();
            let train: Vec<Signal> = captures
                .iter()
                .filter(|c| matches!(c.role, RunRole::Train(_)))
                .map(|c| c.signal.clone())
                .collect();
            let ids = IdsBuilder::new()
                .synchronizer(DwmSynchronizer::new(params))
                .build()?;
            let trained = ids.train(&train, reference, set.spec.profile.nsync_r())?;
            let key = format!("{machine}/{}", format!("{channel:?}").to_lowercase());
            registry.insert(&key, trained.stream_spec(params));
            let benign: Vec<Signal> = captures
                .iter()
                .filter(|c| matches!(c.role, RunRole::TestBenign(_)))
                .map(|c| c.signal.clone())
                .collect();
            let malicious: Vec<Signal> = captures
                .iter()
                .filter(|c| matches!(c.role, RunRole::Malicious { .. }))
                .map(|c| c.signal.clone())
                .collect();
            if attacks.is_empty() {
                attacks = captures
                    .iter()
                    .filter_map(|c| match &c.role {
                        RunRole::Malicious { attack, .. } => Some(attack.clone()),
                        _ => None,
                    })
                    .collect();
            }
            channels.push(ChannelSim {
                key,
                benign,
                malicious,
            });
        }
        Ok(FleetSim {
            cfg,
            registry,
            channels,
            attacks,
        })
    }

    /// The shared trained-model registry (one entry per
    /// [`SIM_CHANNELS`] channel).
    pub fn registry(&self) -> &SpecRegistry {
        &self.registry
    }

    /// The registry key a printer runs against (printers alternate
    /// channels by id).
    pub fn key_of(&self, printer: PrinterId) -> &str {
        &self.channels[(printer.0 % self.channels.len() as u64) as usize].key
    }

    /// The trained spec a printer runs against.
    pub fn spec_of(&self, printer: PrinterId) -> Arc<StreamSpec> {
        self.registry
            .get(self.key_of(printer))
            .expect("sim registry holds every sim channel")
    }

    /// One shared fused spec covering every [`SIM_CHANNELS`] lane
    /// (labels `"acc"`, `"pwr"`), with the given fusion policy and
    /// per-lane calibration applied on top of the trained models. Every
    /// printer of the fused fleet shares this one `Arc` — trained
    /// artifacts are interned exactly as in the single-lane registry.
    pub fn fused_spec(
        &self,
        policy: FusionPolicy,
        calibration: CalibrationConfig,
    ) -> Arc<FusedSpec> {
        let mut fused = FusedSpec::new(policy);
        for channel in &self.channels {
            let spec = self
                .registry
                .get(&channel.key)
                .expect("sim registry holds every sim channel");
            let lane = StreamSpec::new(spec.reference().clone(), spec.params(), spec.thresholds())
                .with_config(spec.config().with_calibration(calibration));
            let label = channel.key.rsplit('/').next().unwrap_or(&channel.key);
            fused = fused.with_lane(label, Arc::new(lane));
        }
        Arc::new(fused)
    }

    /// Builds the printer's deterministic chunk script: a test print
    /// (benign or attacked per [`SimConfig::malicious_fraction`]),
    /// optionally corrupted by a seeded fault plan, sliced into DAQ
    /// frames.
    ///
    /// # Errors
    ///
    /// Propagates fault-plan and slicing failures.
    pub fn script(&self, printer: PrinterId) -> Result<PrinterScript, SimError> {
        let channel = &self.channels[(printer.0 % self.channels.len() as u64) as usize];
        let (malicious, faulted) = self.fate_of(printer);
        let pool = if malicious {
            &channel.malicious
        } else {
            &channel.benign
        };
        let pick = (mix(self.cfg.seed, printer.0, 0x7069) % pool.len() as u64) as usize;
        let chunks = self.lane_chunks(printer, &pool[pick], faulted, 0)?;
        Ok(PrinterScript {
            printer,
            key: channel.key.clone(),
            chunks,
            malicious,
            attack: malicious.then(|| self.attacks[pick].clone()),
            faulted,
        })
    }

    /// Builds the printer's deterministic *fused* script: the same
    /// scripted print as [`FleetSim::script`] would pick, captured
    /// through every [`SIM_CHANNELS`] side channel at once (one chunk
    /// sequence per fused lane). Fate coins (malicious, faulted) reuse
    /// the single-lane salts, so a printer attacked in the single-lane
    /// drill is attacked here too.
    ///
    /// # Errors
    ///
    /// Propagates fault-plan and slicing failures.
    pub fn fused_script(&self, printer: PrinterId) -> Result<FusedScript, SimError> {
        let (malicious, faulted) = self.fate_of(printer);
        let pool_len = if malicious {
            self.channels[0].malicious.len()
        } else {
            self.channels[0].benign.len()
        };
        let pick = (mix(self.cfg.seed, printer.0, 0x7069) % pool_len as u64) as usize;
        let mut lanes = Vec::with_capacity(self.channels.len());
        for (lane, channel) in self.channels.iter().enumerate() {
            let pool = if malicious {
                &channel.malicious
            } else {
                &channel.benign
            };
            lanes.push(self.lane_chunks(printer, &pool[pick], faulted, lane as u64)?);
        }
        Ok(FusedScript {
            printer,
            lanes,
            malicious,
            attack: malicious.then(|| self.attacks[pick].clone()),
            faulted,
        })
    }

    /// The deterministic (malicious, faulted) coins of one printer. A
    /// set with no malicious runs (benign-only stressor scenarios) pins
    /// every printer's malicious coin to benign instead of indexing an
    /// empty pool.
    fn fate_of(&self, printer: PrinterId) -> (bool, bool) {
        let has_malicious = !self.attacks.is_empty();
        (
            has_malicious
                && coin(
                    self.cfg.seed,
                    printer.0,
                    0x6d61,
                    self.cfg.malicious_fraction,
                ),
            coin(self.cfg.seed, printer.0, 0x6661, self.cfg.fault_fraction),
        )
    }

    /// Applies the (per-lane) fault plan and slices one lane's signal
    /// into DAQ frames.
    fn lane_chunks(
        &self,
        printer: PrinterId,
        signal: &Signal,
        faulted: bool,
        lane: u64,
    ) -> Result<Vec<Signal>, SimError> {
        let mut signal = signal.clone();
        if faulted {
            let plan = FaultPlan::severity(
                0.6,
                signal.channels(),
                signal.duration(),
                mix(self.cfg.seed, printer.0, 0x706c ^ (lane << 16)),
            );
            signal = plan.apply(&signal)?;
        }
        let frame = ((self.cfg.chunk_seconds * signal.fs()) as usize).max(1);
        let mut chunks = Vec::with_capacity(signal.len().div_ceil(frame));
        let mut i = 0;
        while i < signal.len() {
            let end = (i + frame).min(signal.len());
            chunks.push(signal.slice(i..end)?);
            i = end;
        }
        Ok(chunks)
    }
}
