//! Shard worker: one thread multiplexing many printers' detectors.
//!
//! Shared-nothing by construction — the worker owns every
//! [`StreamingIds`](nsync::StreamingIds) assigned to its shard, and the
//! only cross-thread
//! state is the counters cell behind `ShardShared` (never the detector
//! state itself, so the verdict stream cannot be perturbed by another
//! shard's progress).

use crate::config::{AlertPolicy, FleetConfig};
use crate::fleet::FleetVerdict;
use crate::snapshot::PrinterReport;
use crate::PrinterId;
use am_dsp::Signal;
use crossbeam::channel::{Receiver, Sender, TrySendError};
use nsync::streaming::ChunkOutcome;
use nsync::verdict::Severity;
use nsync::{FusedIds, FusedSpec, StreamSpec};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;

/// Commands a shard worker consumes, in FIFO order. Chunks of one
/// printer therefore arrive at its detector exactly in send order — the
/// per-printer determinism guarantee.
pub(crate) enum ShardCmd {
    /// Adopt a freshly opened detector (opened by the caller so
    /// registration errors are synchronous).
    Register(Box<PrinterCell>),
    /// Retire a printer; its final [`PrinterReport`] lands in the shard's
    /// retired list.
    Detach(PrinterId),
    /// One chunk of observed samples for one side-channel lane of a
    /// printer (lane 0 for single-channel printers).
    Chunk(PrinterId, u8, Signal),
    /// Hot-swap a printer's lane-0 trained spec in place (fleet reload).
    /// Rides the same FIFO as chunks, so the swap lands at an exact
    /// position in the printer's chunk sequence and other printers are
    /// untouched.
    Swap(PrinterId, Arc<StreamSpec>),
}

/// One printer's state as owned by its shard worker.
pub(crate) struct PrinterCell {
    pub(crate) id: PrinterId,
    /// The shared trained model (one lane per side channel) — kept so
    /// the watchdog can rebuild the detector via [`FusedSpec::resume`]
    /// after a panic.
    pub(crate) spec: Arc<FusedSpec>,
    pub(crate) ids: FusedIds,
    pub(crate) chunks: u64,
    pub(crate) malformed_chunks: u64,
    pub(crate) alerts_emitted: u64,
    pub(crate) alerts_dropped: u64,
    pub(crate) restarts: usize,
    /// Worst severity any verdict reached, latched across detector
    /// restarts (a rebuilt detector starts with empty latches).
    pub(crate) max_severity: Option<Severity>,
    /// Restart budget exhausted: chunks are counted but no longer fed.
    pub(crate) dead: bool,
    /// Chaos hook: panic while processing this (0-based) chunk index,
    /// once, in the first detector generation only.
    pub(crate) chaos_panic_chunk: Option<u64>,
}

/// Live counters of one shard, readable at any time via
/// [`Fleet::snapshot`](crate::Fleet::snapshot). All values are
/// cumulative since spawn.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Printers currently owned by this shard.
    pub printers: usize,
    /// Chunks processed (including chunks for dead printers).
    pub chunks: u64,
    /// Chunks addressed to a printer this shard does not know.
    pub orphan_chunks: u64,
    /// Chunks for printers whose restart budget was exhausted.
    pub dead_printer_chunks: u64,
    /// Malformed chunks rejected by detectors (stream state untouched).
    pub malformed_chunks: u64,
    /// Stream resynchronizations performed after desyncs.
    pub resyncs: u64,
    /// Detector restarts performed by the per-printer watchdog.
    pub restarts: u64,
    /// Printers whose restart budget was exhausted.
    pub dead_printers: usize,
    /// Windows fully processed across all printers of the shard.
    pub windows_seen: u64,
    /// Verdicts forwarded into the fleet fan-in channel.
    pub alerts_emitted: u64,
    /// Verdicts dropped by [`AlertPolicy::DropAndCount`].
    pub alerts_dropped: u64,
    /// Verdicts lost because the fan-in receiver was gone.
    pub alerts_lost: u64,
    /// Spec hot-swaps adopted by live detectors (including dead-printer
    /// revivals).
    pub spec_swaps: u64,
    /// Spec hot-swaps refused (shape mismatch, unknown printer, or a
    /// revival that failed to resume).
    pub spec_swap_failures: u64,
}

/// Cross-thread cell owning a shard's observable state.
pub(crate) struct ShardShared {
    pub(crate) stats: Mutex<ShardStats>,
    /// Deepest command queue observed by any `send` (the queue itself is
    /// bounded, so this is ≤ capacity by construction).
    pub(crate) max_queue_depth: AtomicU64,
    /// Chunks rejected at the ingestion edge (fleet-side, per shard).
    pub(crate) rejected_chunks: AtomicU64,
    /// Reports of printers retired by detach or shutdown.
    pub(crate) reports: Mutex<Vec<PrinterReport>>,
    /// Interned per-shard chunk-latency histogram name
    /// (`fleet.shard<i>.chunk`), recorded only while telemetry is on.
    pub(crate) latency_name: String,
}

impl ShardShared {
    pub(crate) fn new(index: usize) -> Self {
        ShardShared {
            stats: Mutex::new(ShardStats::default()),
            max_queue_depth: AtomicU64::new(0),
            rejected_chunks: AtomicU64::new(0),
            reports: Mutex::new(Vec::new()),
            latency_name: format!("fleet.shard{index}.chunk"),
        }
    }
}

fn report_of(cell: &PrinterCell) -> PrinterReport {
    let max_severity = cell.max_severity.max(cell.ids.max_severity());
    PrinterReport {
        printer: cell.id,
        windows_seen: cell.ids.windows_seen(),
        intrusion: max_severity.is_some(),
        max_severity,
        last_verdict: cell.ids.last_verdict().cloned(),
        chunks: cell.chunks,
        malformed_chunks: cell.malformed_chunks,
        alerts_emitted: cell.alerts_emitted,
        alerts_dropped: cell.alerts_dropped,
        restarts: cell.restarts,
        dead: cell.dead,
        health: cell.ids.health_report(),
    }
}

/// The shard worker loop. Returns when every command sender is dropped
/// (fleet shutdown); all still-registered printers are then retired into
/// the shared reports list.
pub(crate) fn run_shard(
    rx: &Receiver<ShardCmd>,
    verdict_tx: &Sender<FleetVerdict>,
    shared: &Arc<ShardShared>,
    cfg: &FleetConfig,
) {
    let latency = am_telemetry::histogram(&shared.latency_name);
    let mut printers: HashMap<PrinterId, PrinterCell> = HashMap::new();
    for cmd in rx.iter() {
        match cmd {
            ShardCmd::Register(cell) => {
                printers.insert(cell.id, *cell);
                shared.stats.lock().printers = printers.len();
            }
            ShardCmd::Detach(id) => {
                if let Some(cell) = printers.remove(&id) {
                    shared.reports.lock().push(report_of(&cell));
                }
                shared.stats.lock().printers = printers.len();
            }
            ShardCmd::Chunk(id, lane, chunk) => {
                let t0 = if am_telemetry::enabled() {
                    Some(Instant::now())
                } else {
                    None
                };
                process_chunk(id, lane, &chunk, &mut printers, verdict_tx, shared, cfg);
                if let Some(t0) = t0 {
                    latency.record(t0.elapsed());
                }
            }
            ShardCmd::Swap(id, spec) => swap_printer(id, spec, &mut printers, shared),
        }
    }
    let mut reports = shared.reports.lock();
    for cell in printers.values() {
        reports.push(report_of(cell));
    }
}

fn process_chunk(
    id: PrinterId,
    lane: u8,
    chunk: &Signal,
    printers: &mut HashMap<PrinterId, PrinterCell>,
    verdict_tx: &Sender<FleetVerdict>,
    shared: &Arc<ShardShared>,
    cfg: &FleetConfig,
) {
    let Some(cell) = printers.get_mut(&id) else {
        shared.stats.lock().orphan_chunks += 1;
        return;
    };
    if cell.dead {
        cell.chunks += 1;
        let mut s = shared.stats.lock();
        s.chunks += 1;
        s.dead_printer_chunks += 1;
        return;
    }
    let chunk_index = cell.chunks;
    cell.chunks += 1;
    let chaos = cell.chaos_panic_chunk.take_if(|c| *c == chunk_index);
    let windows_before = cell.ids.windows_seen();
    // Lane tags beyond the printer's lane count wrap: a farm controller
    // tagging frames by physical sensor id may feed a single-lane
    // printer from any tag, and multi-lane printers route by index.
    let lane_index = (lane as usize) % cell.ids.lane_count().max(1);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(c) = chaos {
            panic!("fleet chaos hook: deliberate panic on {id} chunk {c}");
        }
        cell.ids.push_supervised(lane_index, chunk)
    }));
    match outcome {
        Ok(Ok(ChunkOutcome::Processed(verdicts))) => {
            let windows_after = cell.ids.windows_seen();
            cell.max_severity = cell.max_severity.max(cell.ids.max_severity());
            let emitted = verdicts.len() as u64;
            cell.alerts_emitted += emitted;
            let mut dropped = 0u64;
            let mut lost = 0u64;
            for verdict in verdicts {
                let fleet_verdict = FleetVerdict {
                    printer: id,
                    verdict,
                };
                match cfg.alert_policy {
                    AlertPolicy::Block => {
                        if verdict_tx.send(fleet_verdict).is_err() {
                            lost += 1;
                        }
                    }
                    AlertPolicy::DropAndCount => match verdict_tx.try_send(fleet_verdict) {
                        Ok(()) => {}
                        Err(TrySendError::Full(_)) => dropped += 1,
                        Err(TrySendError::Disconnected(_)) => lost += 1,
                    },
                }
            }
            cell.alerts_dropped += dropped;
            let mut s = shared.stats.lock();
            s.chunks += 1;
            s.windows_seen += (windows_after - windows_before) as u64;
            s.alerts_emitted += emitted - dropped - lost;
            s.alerts_dropped += dropped;
            s.alerts_lost += lost;
            if emitted > 0 {
                am_telemetry::count!("fleet.alerts", emitted);
            }
            if dropped > 0 {
                am_telemetry::count!("fleet.alerts_dropped", dropped);
            }
        }
        Ok(Ok(ChunkOutcome::Resynced)) => {
            let mut s = shared.stats.lock();
            s.chunks += 1;
            s.resyncs += 1;
        }
        Ok(Ok(ChunkOutcome::Rejected(_))) => {
            cell.malformed_chunks += 1;
            let mut s = shared.stats.lock();
            s.chunks += 1;
            s.malformed_chunks += 1;
        }
        // A failed resync is unrecoverable for this detector instance;
        // treat it exactly like a panic and rebuild from the spec.
        Ok(Err(_)) | Err(_) => {
            shared.stats.lock().chunks += 1;
            restart_printer(cell, shared, cfg);
        }
    }
}

/// Per-lane resume positions of a cell's detector (for the watchdog and
/// dead-printer revival: lanes may have progressed unevenly).
fn lane_windows(cell: &PrinterCell) -> Vec<usize> {
    (0..cell.ids.lane_count())
        .map(|l| cell.ids.lane_windows_seen(l).unwrap_or(0))
        .collect()
}

/// Hot-swap one printer's lane-0 trained spec. A live detector adopts
/// it in place ([`StreamingIds::adopt_spec`](nsync::StreamingIds::adopt_spec)
/// preserves windows seen, health, and the CADHD accumulator); a *dead*
/// printer is revived from the new spec with a fresh restart budget —
/// a re-trained model is exactly the operator action that should re-arm
/// the watchdog.
fn swap_printer(
    id: PrinterId,
    spec: Arc<StreamSpec>,
    printers: &mut HashMap<PrinterId, PrinterCell>,
    shared: &Arc<ShardShared>,
) {
    let Some(cell) = printers.get_mut(&id) else {
        shared.stats.lock().spec_swap_failures += 1;
        return;
    };
    let swapped = match cell.spec.with_lane_spec(0, Arc::clone(&spec)) {
        Ok(s) => Arc::new(s),
        Err(_) => {
            shared.stats.lock().spec_swap_failures += 1;
            return;
        }
    };
    if cell.dead {
        match swapped.resume(&lane_windows(cell)) {
            Ok(ids) => {
                cell.ids = ids;
                cell.spec = swapped;
                cell.dead = false;
                cell.restarts = 0;
                let mut s = shared.stats.lock();
                s.dead_printers = s.dead_printers.saturating_sub(1);
                s.spec_swaps += 1;
                am_telemetry::count!("fleet.spec_swaps");
            }
            Err(_) => shared.stats.lock().spec_swap_failures += 1,
        }
        return;
    }
    match cell.ids.adopt_spec(spec) {
        Ok(()) => {
            cell.spec = swapped;
            shared.stats.lock().spec_swaps += 1;
            am_telemetry::count!("fleet.spec_swaps");
        }
        Err(_) => {
            shared.stats.lock().spec_swap_failures += 1;
            am_telemetry::count!("fleet.spec_swap_failures");
        }
    }
}

/// The per-printer watchdog: rebuild a crashed detector resynchronized
/// from the last fully processed window of every lane (the same
/// [`FusedSpec::resume`] path the single-printer monitor's resume uses
/// per lane), or declare the printer dead once the restart budget is
/// exhausted.
fn restart_printer(cell: &mut PrinterCell, shared: &Arc<ShardShared>, cfg: &FleetConfig) {
    if cell.restarts >= cfg.max_restarts_per_printer {
        cell.dead = true;
        shared.stats.lock().dead_printers += 1;
        return;
    }
    match cell.spec.resume(&lane_windows(cell)) {
        Ok(resumed) => {
            cell.ids = resumed;
            cell.restarts += 1;
            let mut s = shared.stats.lock();
            s.restarts += 1;
            am_telemetry::count!("fleet.restarts");
        }
        Err(_) => {
            cell.dead = true;
            shared.stats.lock().dead_printers += 1;
        }
    }
}
