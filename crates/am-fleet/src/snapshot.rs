//! Observable fleet state: live snapshots and the final shutdown report.

use crate::fleet::FleetVerdict;
use crate::shard::ShardStats;
use crate::PrinterId;
use nsync::health::HealthReport;
use nsync::verdict::{Severity, Verdict};

/// Point-in-time view of one shard, from [`Fleet::snapshot`](crate::Fleet::snapshot).
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Shard index (= worker thread).
    pub index: usize,
    /// Commands waiting in the shard's bounded queue right now.
    pub queue_depth: usize,
    /// Deepest queue observed by any ingestion since spawn.
    pub max_queue_depth: u64,
    /// Chunks refused at the ingestion edge under
    /// [`IngestPolicy::Reject`](crate::IngestPolicy::Reject).
    pub rejected_chunks: u64,
    /// Upper bound of the p95 chunk-processing latency in microseconds,
    /// from the shard's `am-telemetry` histogram (`fleet.shard<i>.chunk`).
    /// Zero when telemetry is disabled — enable with
    /// `AM_TELEMETRY=1` or [`am_telemetry::set_enabled`].
    pub chunk_latency_p95_us: u64,
    /// Cumulative shard counters.
    pub stats: ShardStats,
}

/// Point-in-time view of the whole fleet.
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    /// Printers currently registered fleet-wide.
    pub printers: usize,
    /// Alerts waiting in the fan-in channel right now.
    pub alert_queue_depth: usize,
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardSnapshot>,
}

impl FleetSnapshot {
    /// Sums a per-shard counter across the fleet.
    fn sum(&self, f: impl Fn(&ShardStats) -> u64) -> u64 {
        self.shards.iter().map(|s| f(&s.stats)).sum()
    }

    /// Chunks processed fleet-wide.
    pub fn chunks(&self) -> u64 {
        self.sum(|s| s.chunks)
    }

    /// Alerts forwarded into the fan-in channel fleet-wide.
    pub fn alerts_emitted(&self) -> u64 {
        self.sum(|s| s.alerts_emitted)
    }

    /// Alerts dropped under
    /// [`AlertPolicy::DropAndCount`](crate::AlertPolicy::DropAndCount).
    pub fn alerts_dropped(&self) -> u64 {
        self.sum(|s| s.alerts_dropped)
    }

    /// Alerts lost to a vanished receiver (always 0 while the fleet or
    /// an operator holds the receiver).
    pub fn alerts_lost(&self) -> u64 {
        self.sum(|s| s.alerts_lost)
    }

    /// Watchdog restarts fleet-wide.
    pub fn restarts(&self) -> u64 {
        self.sum(|s| s.restarts)
    }

    /// Deepest shard queue observed since spawn.
    pub fn max_queue_depth(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.max_queue_depth)
            .max()
            .unwrap_or(0)
    }

    /// Chunks refused at the ingestion edge fleet-wide.
    pub fn rejected_chunks(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected_chunks).sum()
    }
}

/// Final state of one printer, reported at detach or shutdown.
#[derive(Debug, Clone)]
pub struct PrinterReport {
    /// The printer.
    pub printer: PrinterId,
    /// Windows its detector fully processed.
    pub windows_seen: usize,
    /// Latched intrusion flag: true if any verdict ever fired, even if
    /// it was dropped from the fan-in channel. Always equals
    /// `max_severity.is_some()`.
    pub intrusion: bool,
    /// Worst severity any verdict reached, latched across detector
    /// restarts. `None` means the printer never alerted.
    pub max_severity: Option<Severity>,
    /// The most recent verdict of the (final) detector instance, if any.
    pub last_verdict: Option<Verdict>,
    /// Chunks routed to this printer.
    pub chunks: u64,
    /// Chunks its detector rejected as malformed.
    pub malformed_chunks: u64,
    /// Alerts its detector emitted.
    pub alerts_emitted: u64,
    /// Of those, alerts dropped from the full fan-in channel under
    /// [`AlertPolicy::DropAndCount`](crate::AlertPolicy::DropAndCount) —
    /// the verdict still latched, but nobody downstream saw the alert.
    pub alerts_dropped: u64,
    /// Watchdog restarts performed for this printer.
    pub restarts: usize,
    /// Whether the restart budget was exhausted.
    pub dead: bool,
    /// Channel-health report of the (final) detector instance.
    pub health: HealthReport,
}

/// Everything [`Fleet::finish`](crate::Fleet::finish) returns: the final
/// counters, one report per printer, and any verdicts nobody consumed
/// live.
#[derive(Debug)]
pub struct FleetReport {
    /// Counters at shutdown, after all queues drained.
    pub snapshot: FleetSnapshot,
    /// One report per registered printer, sorted by printer id.
    pub printers: Vec<PrinterReport>,
    /// Verdicts still in the fan-in channel at shutdown (empty if an
    /// operator drained them live).
    pub leftover_verdicts: Vec<FleetVerdict>,
}

impl FleetReport {
    /// The report of one printer, if it was registered.
    pub fn printer(&self, id: PrinterId) -> Option<&PrinterReport> {
        self.printers.iter().find(|r| r.printer == id)
    }

    /// Printers whose intrusion verdict latched true.
    pub fn intrusions(&self) -> impl Iterator<Item = &PrinterReport> {
        self.printers.iter().filter(|r| r.intrusion)
    }
}
