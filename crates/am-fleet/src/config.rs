//! Fleet sizing, queueing, and supervision configuration.

use crate::PrinterId;
use serde::{Deserialize, Serialize};

/// What [`Fleet::send`](crate::Fleet::send) does when the target shard's
/// bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IngestPolicy {
    /// Block the caller until the shard catches up (a DAQ gateway that
    /// can buffer upstream).
    Block,
    /// Return a typed [`Rejected`](crate::Rejected) immediately (a
    /// gateway that must never block; the caller decides whether to
    /// retry, downsample, or shed).
    Reject,
}

/// What a shard worker does when the fleet-wide alert channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertPolicy {
    /// Block the worker until the operator drains alerts — no alert is
    /// ever lost while a consumer exists. [`Fleet::finish`](crate::Fleet::finish)
    /// drains the channel while joining workers, so shutdown cannot
    /// deadlock on a full alert queue.
    Block,
    /// Drop the alert and count it in
    /// [`ShardStats::alerts_dropped`](crate::ShardStats::alerts_dropped);
    /// the per-printer intrusion verdict itself is latched in the
    /// printer's [`PrinterReport`](crate::PrinterReport) and never lost.
    DropAndCount,
}

/// Fleet supervisor configuration.
///
/// `#[non_exhaustive]`: construct with [`Default`] and the `with_*`
/// methods, mirroring the single-printer
/// [`MonitorConfig`](nsync::prelude::MonitorConfig).
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FleetConfig {
    /// Worker shards (threads). Clamped to ≥ 1 at spawn.
    pub shards: usize,
    /// Bounded command-queue capacity per shard (registrations, chunks,
    /// and detachments share the FIFO). Clamped to ≥ 1 at spawn.
    pub shard_queue_capacity: usize,
    /// Full-queue policy for [`Fleet::send`](crate::Fleet::send).
    pub ingest: IngestPolicy,
    /// Bounded capacity of the fleet-wide alert fan-in channel.
    pub alert_capacity: usize,
    /// Full-alert-channel policy.
    pub alert_policy: AlertPolicy,
    /// Detector restarts the per-printer watchdog may perform after
    /// panics before declaring the printer dead.
    pub max_restarts_per_printer: usize,
    /// Chaos hooks (fault-injection drills only): see
    /// [`FleetConfig::with_chaos_panic`].
    pub(crate) chaos: Vec<(PrinterId, u64)>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            shard_queue_capacity: 256,
            ingest: IngestPolicy::Reject,
            alert_capacity: 4096,
            alert_policy: AlertPolicy::DropAndCount,
            max_restarts_per_printer: 2,
            chaos: Vec::new(),
        }
    }
}

impl FleetConfig {
    /// Overrides the shard (worker thread) count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Overrides the per-shard command-queue capacity.
    #[must_use]
    pub fn with_shard_queue_capacity(mut self, chunks: usize) -> Self {
        self.shard_queue_capacity = chunks;
        self
    }

    /// Overrides the full-queue ingestion policy.
    #[must_use]
    pub fn with_ingest(mut self, policy: IngestPolicy) -> Self {
        self.ingest = policy;
        self
    }

    /// Overrides the alert fan-in channel capacity.
    #[must_use]
    pub fn with_alert_capacity(mut self, alerts: usize) -> Self {
        self.alert_capacity = alerts;
        self
    }

    /// Overrides the full-alert-channel policy.
    #[must_use]
    pub fn with_alert_policy(mut self, policy: AlertPolicy) -> Self {
        self.alert_policy = policy;
        self
    }

    /// Overrides the per-printer watchdog restart budget.
    #[must_use]
    pub fn with_max_restarts_per_printer(mut self, restarts: usize) -> Self {
        self.max_restarts_per_printer = restarts;
        self
    }

    /// Chaos hook: the shard worker deliberately panics while processing
    /// the given printer's `chunk`-th (0-based) chunk, once — used to
    /// exercise the per-printer watchdog restart path in tests and
    /// fault-injection drills. Not part of the supported production
    /// surface.
    #[doc(hidden)]
    #[must_use]
    pub fn with_chaos_panic(mut self, printer: PrinterId, chunk: u64) -> Self {
        self.chaos.push((printer, chunk));
        self
    }
}
