//! The fleet's shared fused operating point and CI quality floors.
//!
//! The `fleet_soak` example, the `scenario_scorecard` example, and the
//! CI gates all consume these constants, so the committed gate and the
//! shipped configuration cannot drift apart: changing the operating
//! point here changes what CI enforces in the same commit.

use nsync::{CalibrationConfig, FusionPolicy};

/// Consecutive anomalous fusion windows before an alert fires.
pub const DEBOUNCE_WINDOWS: usize = 4;

/// Minimum fused confidence for a window to count toward the debounce.
pub const MIN_CONFIDENCE: f64 = 0.35;

/// Adaptive-calibration warm-up quantile (1.0 = max of warm-up scores).
pub const CALIBRATION_QUANTILE: f64 = 1.0;

/// Adaptive-calibration margin on top of the warm-up quantile.
pub const CALIBRATION_MARGIN: f64 = 0.5;

/// CI floor: minimum acceptable fused recall over malicious printers.
pub const MIN_RECALL: f64 = 0.75;

/// CI ceiling: maximum acceptable fused false-alarm rate over benign
/// printers.
pub const MAX_FALSE_ALARM_RATE: f64 = 0.15;

/// The fused operating point: a [`DEBOUNCE_WINDOWS`]-window debounce
/// with a [`MIN_CONFIDENCE`] confidence floor, and raise-only adaptive
/// per-lane calibration seeded from each stream's warm-up
/// ([`CALIBRATION_QUANTILE`] quantile + [`CALIBRATION_MARGIN`] margin).
pub fn operating_point() -> (FusionPolicy, CalibrationConfig) {
    let policy = FusionPolicy::default()
        .with_debounce_windows(DEBOUNCE_WINDOWS)
        .with_min_confidence(MIN_CONFIDENCE);
    let calibration = CalibrationConfig::adaptive()
        .with_quantile(CALIBRATION_QUANTILE)
        .with_margin(CALIBRATION_MARGIN);
    (policy, calibration)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operating_point_matches_constants() {
        let (policy, _calibration) = operating_point();
        assert_eq!(policy.debounce_windows, DEBOUNCE_WINDOWS);
        assert!((policy.min_confidence - MIN_CONFIDENCE).abs() < 1e-12);
    }

    #[test]
    fn floors_are_probabilities() {
        for v in [
            MIN_CONFIDENCE,
            CALIBRATION_QUANTILE,
            MIN_RECALL,
            MAX_FALSE_ALARM_RATE,
        ] {
            assert!((0.0..=1.0).contains(&v));
        }
        assert!(CALIBRATION_MARGIN >= 0.0);
    }
}
