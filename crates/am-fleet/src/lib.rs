//! # am-fleet — one IDS service for a whole print farm
//!
//! The streaming runtime in [`nsync`] watches *one* printer: a
//! [`StreamSpec`](nsync::StreamSpec) spawns one supervised monitor
//! thread per machine. A production deployment — the farm-scale setting
//! Belikovetsky et al. frame as per-job audio verification and Yu et al.
//! multiply by fusing several sensor channels per machine — cannot
//! afford a thread per printer. This crate multiplexes **N concurrent
//! printers over a fixed pool of sharded worker threads** while keeping
//! the one property that makes side-channel verification trustworthy:
//! every printer's verdict stream is **byte-identical** to running that
//! printer's `StreamSpec` alone. Per-chunk compute bottoms out in the
//! [`am_dsp::simd`] kernel layer, so the whole fleet shares one
//! process-wide dispatch decision — the byte-identity claim holds
//! within a backend, and the default dispatch is the bit-stable one.
//!
//! ```text
//!             ┌───────────────────────── Fleet ─────────────────────────┐
//!  printer 17 │  send ──► shard 0 queue ──► worker 0 {ids17, ids23, …}  │
//!  printer 23 │                (bounded,         │                      │
//!  printer 42 │  send ──► shard 1 queue   backpressure)                 │
//!     …       │                └─────────► worker 1 {ids42, …}          │
//!             │                                  │                      │
//!             │        verdict fan-in  ◄───────┴── FleetVerdict{printer}│
//!             └──────────────────────────────────────────────────────────┘
//! ```
//!
//! Why the determinism argument holds (DESIGN.md §11):
//!
//! 1. **Consistent assignment** — a printer maps to a shard by a fixed
//!    hash of its [`PrinterId`] ([`Fleet::shard_of`]), so every chunk of
//!    one printer is handled by the same worker.
//! 2. **Shared-nothing per-shard state** — each worker owns the
//!    [`StreamingIds`](nsync::StreamingIds) of its printers outright; no
//!    cross-shard locks touch detector state.
//! 3. **Per-printer FIFO** — a shard's command queue is a single FIFO,
//!    so chunks of one printer are processed in send order; interleaving
//!    with *other* printers' chunks cannot perturb a detector whose state
//!    is keyed by printer.
//!
//! Ingestion is bounded with **explicit backpressure**: a full shard
//! queue yields a typed [`Rejected`] (or blocks, under
//! [`IngestPolicy::Block`]) instead of queueing without bound. Detector
//! panics are caught per printer and restarted from the last good window
//! via [`StreamSpec::resume`](nsync::StreamSpec::resume) — the same
//! resynchronization path the single-printer monitor's watchdog uses.
//! Trained models are shared: a [`SpecRegistry`] interns one
//! `Arc<StreamSpec>` per model/channel so M printers of the same kind
//! hold one copy of the trained artifacts.
//!
//! Health is observable at any time through [`Fleet::snapshot`]
//! ([`FleetSnapshot`]: per-shard queue depth, chunk-latency p95 via
//! `am-telemetry`, restarts, alerts) and in full at shutdown through
//! [`Fleet::finish`] ([`FleetReport`]: one [`PrinterReport`] per
//! registered printer plus any alerts not consumed live).
//!
//! The [`sim`] module ships a deterministic simulated chunk source
//! (seeded `am-sensors` synthesis plus
//! [`FaultPlan`](am_sensors::faults::FaultPlan) corruption) used by the
//! `fleet_monitor` example, the `fleet_soak` benchmark, and the
//! determinism suite.

pub mod config;
pub mod fleet;
pub mod registry;
pub mod reload;
pub mod shard;
pub mod sim;
pub mod snapshot;
pub mod tuning;

pub use config::{AlertPolicy, FleetConfig, IngestPolicy};
#[allow(deprecated)]
pub use fleet::FleetAlert;
pub use fleet::{Fleet, FleetVerdict, RejectReason, Rejected};
pub use registry::SpecRegistry;
pub use reload::{FleetManifest, ManifestError, ReloadPlan, ReloadReport};
pub use shard::ShardStats;
pub use snapshot::{FleetReport, FleetSnapshot, PrinterReport, ShardSnapshot};

use serde::{Deserialize, Serialize};

/// Identifies one printer within a fleet. Plain `u64` payload so farm
/// controllers can use their own numbering; the shard assignment is a
/// stable function of this value.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PrinterId(pub u64);

impl std::fmt::Display for PrinterId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "printer-{}", self.0)
    }
}

/// Fleet-level failures (per-chunk ingestion failures are the separate,
/// typed [`Rejected`] — they are flow control, not errors).
#[derive(Debug)]
pub enum FleetError {
    /// A detector failed to open or resume.
    Nsync(nsync::NsyncError),
    /// The printer id is already registered.
    DuplicatePrinter(PrinterId),
    /// The printer id is not registered.
    UnknownPrinter(PrinterId),
    /// A reload plan referenced a spec key the registry does not hold.
    UnknownSpec(String),
    /// A shard worker thread stopped accepting commands.
    ShardDown(usize),
    /// A shard worker thread itself panicked (distinct from a detector
    /// panic, which the worker catches and restarts).
    ShardPanicked(usize),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Nsync(e) => write!(f, "detector error: {e}"),
            FleetError::DuplicatePrinter(p) => write!(f, "{p} is already registered"),
            FleetError::UnknownPrinter(p) => write!(f, "{p} is not registered"),
            FleetError::UnknownSpec(key) => write!(f, "spec key `{key}` is not in the registry"),
            FleetError::ShardDown(s) => write!(f, "shard {s} is no longer accepting commands"),
            FleetError::ShardPanicked(s) => write!(f, "shard {s} worker thread panicked"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Nsync(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nsync::NsyncError> for FleetError {
    fn from(e: nsync::NsyncError) -> Self {
        FleetError::Nsync(e)
    }
}
