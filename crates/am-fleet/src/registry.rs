//! Shared trained-model registry.
//!
//! A farm runs many printers of few *kinds*: the trained reference
//! window, thresholds, and DWM parameters are identical for every
//! printer of one kind/channel. [`SpecRegistry`] interns one
//! `Arc<StreamSpec>` per key so M printers hold one copy of the trained
//! artifacts instead of M — registration cost and resident memory then
//! scale with the number of *models*, not the number of printers.

use nsync::StreamSpec;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A keyed, interning store of trained [`StreamSpec`]s shared across a
/// fleet. Cheap to clone internally — every lookup hands out an `Arc`.
#[derive(Debug, Default)]
pub struct SpecRegistry {
    specs: Mutex<HashMap<String, Arc<StreamSpec>>>,
}

impl SpecRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SpecRegistry::default()
    }

    /// Inserts (or replaces) the trained spec for `key`, returning the
    /// shared handle.
    pub fn insert(&self, key: &str, spec: StreamSpec) -> Arc<StreamSpec> {
        let spec = Arc::new(spec);
        self.specs.lock().insert(key.to_string(), Arc::clone(&spec));
        spec
    }

    /// The spec registered under `key`, if any.
    pub fn get(&self, key: &str) -> Option<Arc<StreamSpec>> {
        self.specs.lock().get(key).cloned()
    }

    /// The spec under `key`, training it with `train` on first use.
    /// The train closure runs under the registry lock, so concurrent
    /// callers of the same key train exactly once.
    pub fn get_or_insert_with(
        &self,
        key: &str,
        train: impl FnOnce() -> StreamSpec,
    ) -> Arc<StreamSpec> {
        let mut specs = self.specs.lock();
        Arc::clone(
            specs
                .entry(key.to_string())
                .or_insert_with(|| Arc::new(train())),
        )
    }

    /// Registered model count.
    pub fn len(&self) -> usize {
        self.specs.lock().len()
    }

    /// Whether no model is registered.
    pub fn is_empty(&self) -> bool {
        self.specs.lock().is_empty()
    }

    /// Registered keys, sorted (stable for reports and tests).
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.specs.lock().keys().cloned().collect();
        keys.sort();
        keys
    }
}
