//! The fleet supervisor: registration, ingestion, alert fan-in,
//! snapshots, and shutdown.

use crate::config::{FleetConfig, IngestPolicy};
use crate::registry::SpecRegistry;
use crate::reload::{ReloadPlan, ReloadReport};
use crate::shard::{run_shard, PrinterCell, ShardCmd, ShardShared};
use crate::snapshot::{FleetReport, FleetSnapshot, ShardSnapshot};
use crate::{FleetError, PrinterId};
use am_dsp::Signal;
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use nsync::verdict::Verdict;
use nsync::{FusedSpec, StreamSpec};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A verdict from anywhere in the fleet, tagged with its printer.
#[derive(Debug, Clone)]
pub struct FleetVerdict {
    /// The printer whose detector raised the verdict.
    pub printer: PrinterId,
    /// The structured verdict (severity, confidence, evidence).
    pub verdict: Verdict,
}

/// An alert from anywhere in the fleet, tagged with its printer
/// (pre-verdict surface; nothing produces this any more).
#[deprecated(
    since = "0.3.0",
    note = "consume `FleetVerdict` from `Fleet::verdicts`; evidence flattens to \
            flat alerts via `nsync::streaming::flatten_verdicts`"
)]
#[allow(deprecated)]
#[derive(Debug, Clone)]
pub struct FleetAlert {
    /// The printer whose detector raised the alert.
    pub printer: PrinterId,
    /// The underlying per-window alert.
    pub alert: nsync::streaming::Alert,
}

/// Why a chunk was not ingested. This is flow control, not an error:
/// the caller keeps the chunk and decides whether to retry, downsample,
/// or shed load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// No printer with this id is registered.
    UnknownPrinter,
    /// The target shard's bounded queue is full
    /// ([`IngestPolicy::Reject`] only).
    QueueFull {
        /// The shard whose queue is full.
        shard: usize,
        /// That queue's configured capacity.
        capacity: usize,
    },
    /// The target shard stopped accepting commands.
    ShardDown {
        /// The shard that is down.
        shard: usize,
    },
}

/// A typed ingestion rejection: which printer's chunk was refused and
/// why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// The printer whose chunk was refused.
    pub printer: PrinterId,
    /// Why.
    pub reason: RejectReason,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            RejectReason::UnknownPrinter => write!(f, "{}: not registered", self.printer),
            RejectReason::QueueFull { shard, capacity } => write!(
                f,
                "{}: shard {shard} queue full ({capacity} commands)",
                self.printer
            ),
            RejectReason::ShardDown { shard } => {
                write!(f, "{}: shard {shard} is down", self.printer)
            }
        }
    }
}

struct Shard {
    tx: Sender<ShardCmd>,
    shared: Arc<ShardShared>,
    handle: Option<JoinHandle<()>>,
}

/// Supervises N printers over a fixed pool of sharded worker threads.
/// See the crate docs for the architecture and determinism argument.
pub struct Fleet {
    cfg: FleetConfig,
    shards: Vec<Shard>,
    alert_tx: Option<Sender<FleetVerdict>>,
    alert_rx: Receiver<FleetVerdict>,
    /// printer → shard index, kept fleet-side for synchronous duplicate
    /// and unknown-printer checks.
    registered: HashMap<PrinterId, usize>,
}

/// SplitMix64 finalizer — a fixed, well-mixed hash so shard assignment
/// is stable across runs, platforms, and fleet restarts (HashMap's
/// SipHash is randomly keyed per process, which would break replay).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Fleet {
    /// Spawns the shard worker pool. Shard and queue sizes come from
    /// `cfg` (both clamped to ≥ 1).
    pub fn spawn(cfg: FleetConfig) -> Fleet {
        let shard_count = cfg.shards.max(1);
        let capacity = cfg.shard_queue_capacity.max(1);
        let (alert_tx, alert_rx) = bounded(cfg.alert_capacity.max(1));
        let shards = (0..shard_count)
            .map(|index| {
                let (tx, rx) = bounded::<ShardCmd>(capacity);
                let shared = Arc::new(ShardShared::new(index));
                let handle = {
                    let shared = Arc::clone(&shared);
                    let alert_tx = alert_tx.clone();
                    let cfg = cfg.clone();
                    std::thread::Builder::new()
                        .name(format!("am-fleet-shard{index}"))
                        .spawn(move || run_shard(&rx, &alert_tx, &shared, &cfg))
                        .expect("spawn fleet shard worker")
                };
                Shard {
                    tx,
                    shared,
                    handle: Some(handle),
                }
            })
            .collect();
        Fleet {
            cfg,
            shards,
            alert_tx: Some(alert_tx),
            alert_rx,
            registered: HashMap::new(),
        }
    }

    /// The shard a printer id maps to — a pure function of the id and
    /// the shard count, never of registration order.
    pub fn shard_of(&self, printer: PrinterId) -> usize {
        (splitmix64(printer.0) % self.shards.len() as u64) as usize
    }

    /// Registers a printer against a shared trained spec and opens its
    /// detector. Opening happens on the caller's thread so training or
    /// configuration errors surface synchronously, then ownership moves
    /// to the printer's shard.
    pub fn register(
        &mut self,
        printer: PrinterId,
        spec: Arc<StreamSpec>,
    ) -> Result<(), FleetError> {
        self.register_fused(printer, Arc::new(FusedSpec::single(spec)))
    }

    /// Registers a printer against a multi-lane fused spec (one trained
    /// model per side channel, fused into a single verdict stream).
    /// Chunks are routed to lanes via [`Fleet::send_lane`]; a single-lane
    /// fused spec behaves exactly like [`Fleet::register`].
    pub fn register_fused(
        &mut self,
        printer: PrinterId,
        spec: Arc<FusedSpec>,
    ) -> Result<(), FleetError> {
        if self.registered.contains_key(&printer) {
            return Err(FleetError::DuplicatePrinter(printer));
        }
        let ids = spec.open()?;
        let shard = self.shard_of(printer);
        let chaos_panic_chunk = self
            .cfg
            .chaos
            .iter()
            .find(|(p, _)| *p == printer)
            .map(|(_, chunk)| *chunk);
        let cell = Box::new(PrinterCell {
            id: printer,
            spec,
            ids,
            chunks: 0,
            malformed_chunks: 0,
            alerts_emitted: 0,
            alerts_dropped: 0,
            restarts: 0,
            max_severity: None,
            dead: false,
            chaos_panic_chunk,
        });
        // Registration is control plane: always block (a full queue just
        // delays adoption; it never reorders this printer's chunks,
        // which are only accepted once registration has been enqueued).
        self.shards[shard]
            .tx
            .send(ShardCmd::Register(cell))
            .map_err(|_| FleetError::ShardDown(shard))?;
        self.registered.insert(printer, shard);
        Ok(())
    }

    /// Registers a printer by registry key (convenience over
    /// [`Fleet::register`]).
    pub fn register_from(
        &mut self,
        printer: PrinterId,
        registry: &SpecRegistry,
        key: &str,
    ) -> Result<(), FleetError> {
        let spec = registry
            .get(key)
            .ok_or(FleetError::UnknownPrinter(printer))?;
        self.register(printer, spec)
    }

    /// Hot-swaps a registered printer's trained spec. The swap command
    /// rides the printer's shard FIFO, so it takes effect at an exact
    /// position in that printer's chunk sequence; the detector adopts
    /// the new model in place (windows seen, health, and the CADHD
    /// accumulator carry over — see
    /// [`StreamingIds::adopt_spec`](nsync::StreamingIds::adopt_spec)),
    /// and no other printer observes the reload. A dead printer is
    /// revived from the new spec with a fresh restart budget.
    ///
    /// # Errors
    ///
    /// [`FleetError::UnknownPrinter`] if the printer is not registered,
    /// [`FleetError::ShardDown`] if its shard stopped accepting
    /// commands. Spec *adoption* errors (shape mismatch) surface on the
    /// shard as [`ShardStats::spec_swap_failures`](crate::ShardStats::spec_swap_failures).
    pub fn swap_spec(
        &mut self,
        printer: PrinterId,
        spec: Arc<StreamSpec>,
    ) -> Result<(), FleetError> {
        let &shard = self
            .registered
            .get(&printer)
            .ok_or(FleetError::UnknownPrinter(printer))?;
        self.shards[shard]
            .tx
            .send(ShardCmd::Swap(printer, spec))
            .map_err(|_| FleetError::ShardDown(shard))
    }

    /// Applies a hot-reload plan (see [`crate::reload`]): drops first
    /// (freeing ids), then adds, then spec swaps, resolving keys against
    /// `registry`. Per-entry failures are collected in the report rather
    /// than aborting the rest of the reload.
    pub fn apply(&mut self, plan: &ReloadPlan, registry: &SpecRegistry) -> ReloadReport {
        let mut report = ReloadReport::default();
        for &printer in &plan.drop {
            match self.detach(printer) {
                Ok(()) => report.dropped.push(printer),
                Err(e) => report.errors.push((printer, e)),
            }
        }
        for (printer, key) in &plan.add {
            let result = registry
                .get(key)
                .ok_or_else(|| FleetError::UnknownSpec(key.clone()))
                .and_then(|spec| self.register(*printer, spec));
            match result {
                Ok(()) => report.added.push(*printer),
                Err(e) => report.errors.push((*printer, e)),
            }
        }
        for (printer, key) in &plan.swap {
            let result = registry
                .get(key)
                .ok_or_else(|| FleetError::UnknownSpec(key.clone()))
                .and_then(|spec| self.swap_spec(*printer, spec));
            match result {
                Ok(()) => report.swapped.push(*printer),
                Err(e) => report.errors.push((*printer, e)),
            }
        }
        am_telemetry::count!("fleet.reloads");
        report
    }

    /// Retires a printer. Its final [`PrinterReport`](crate::PrinterReport)
    /// is collected by the shard and included in the [`FleetReport`].
    pub fn detach(&mut self, printer: PrinterId) -> Result<(), FleetError> {
        let shard = self
            .registered
            .remove(&printer)
            .ok_or(FleetError::UnknownPrinter(printer))?;
        self.shards[shard]
            .tx
            .send(ShardCmd::Detach(printer))
            .map_err(|_| FleetError::ShardDown(shard))?;
        Ok(())
    }

    /// Ingests one chunk of observed samples for a printer. Bounded: a
    /// full shard queue blocks or rejects per
    /// [`FleetConfig::ingest`](crate::FleetConfig); it never queues
    /// without bound.
    pub fn send(&self, printer: PrinterId, chunk: Signal) -> Result<(), Rejected> {
        self.send_lane(printer, 0, chunk)
    }

    /// Ingests one chunk for one side-channel lane of a printer. Lane
    /// tags beyond the printer's lane count wrap modulo the count, so a
    /// controller tagging frames by physical sensor id can feed
    /// single-lane printers without remapping. Same flow control as
    /// [`Fleet::send`].
    pub fn send_lane(&self, printer: PrinterId, lane: u8, chunk: Signal) -> Result<(), Rejected> {
        let Some(&shard_index) = self.registered.get(&printer) else {
            return Err(Rejected {
                printer,
                reason: RejectReason::UnknownPrinter,
            });
        };
        let shard = &self.shards[shard_index];
        let cmd = ShardCmd::Chunk(printer, lane, chunk);
        match self.cfg.ingest {
            IngestPolicy::Block => shard.tx.send(cmd).map_err(|_| Rejected {
                printer,
                reason: RejectReason::ShardDown { shard: shard_index },
            })?,
            IngestPolicy::Reject => match shard.tx.try_send(cmd) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    shard.shared.rejected_chunks.fetch_add(1, Ordering::Relaxed);
                    return Err(Rejected {
                        printer,
                        reason: RejectReason::QueueFull {
                            shard: shard_index,
                            capacity: self.cfg.shard_queue_capacity.max(1),
                        },
                    });
                }
                Err(TrySendError::Disconnected(_)) => {
                    return Err(Rejected {
                        printer,
                        reason: RejectReason::ShardDown { shard: shard_index },
                    });
                }
            },
        }
        shard
            .shared
            .max_queue_depth
            .fetch_max(shard.tx.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// The fleet-wide verdict fan-in. Clone the receiver into an
    /// operator thread to consume verdicts live; verdicts not consumed
    /// by the time [`Fleet::finish`] runs are returned in the report
    /// instead.
    pub fn verdicts(&self) -> Receiver<FleetVerdict> {
        self.alert_rx.clone()
    }

    /// The fleet-wide fan-in under its pre-verdict name.
    #[deprecated(since = "0.3.0", note = "use `Fleet::verdicts`")]
    pub fn alerts(&self) -> Receiver<FleetVerdict> {
        self.verdicts()
    }

    /// Currently registered printer count.
    pub fn printers(&self) -> usize {
        self.registered.len()
    }

    /// A point-in-time health snapshot (cheap; touches only counters and
    /// queue lengths, never detector state).
    pub fn snapshot(&self) -> FleetSnapshot {
        FleetSnapshot {
            printers: self.registered.len(),
            alert_queue_depth: self.alert_rx.len(),
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(index, shard)| ShardSnapshot {
                    index,
                    queue_depth: shard.tx.len(),
                    max_queue_depth: shard.shared.max_queue_depth.load(Ordering::Relaxed),
                    rejected_chunks: shard.shared.rejected_chunks.load(Ordering::Relaxed),
                    chunk_latency_p95_us: am_telemetry::histogram_quantile_nanos(
                        &shard.shared.latency_name,
                        0.95,
                    ) / 1_000,
                    stats: shard.shared.stats.lock().clone(),
                })
                .collect(),
        }
    }

    /// Shuts the fleet down: closes the command queues, drains the alert
    /// channel while the workers wind down (so
    /// [`AlertPolicy::Block`](crate::AlertPolicy::Block) cannot deadlock
    /// shutdown), joins every worker, and returns the final per-printer
    /// reports.
    pub fn finish(mut self) -> Result<FleetReport, FleetError> {
        for shard in &mut self.shards {
            // Dropping the sender ends the worker's command loop once the
            // queue drains.
            let (closed_tx, _) = bounded(1);
            drop(std::mem::replace(&mut shard.tx, closed_tx));
        }
        drop(self.alert_tx.take());
        // Terminates when the last worker exits and drops its alert
        // sender clone — workers blocked on a full alert channel are
        // unblocked by this very drain.
        let leftover_verdicts: Vec<FleetVerdict> = self.alert_rx.iter().collect();
        let mut panicked = None;
        for (index, shard) in self.shards.iter_mut().enumerate() {
            if let Some(handle) = shard.handle.take() {
                if handle.join().is_err() {
                    panicked = Some(index);
                }
            }
        }
        if let Some(index) = panicked {
            return Err(FleetError::ShardPanicked(index));
        }
        // Taken after the join so every counter is final.
        let final_snapshot = self.snapshot();
        let mut printers: Vec<_> = self
            .shards
            .iter()
            .flat_map(|shard| shard.shared.reports.lock().clone())
            .collect();
        printers.sort_by_key(|r| r.printer);
        Ok(FleetReport {
            snapshot: final_snapshot,
            printers,
            leftover_verdicts,
        })
    }
}
