//! Dataset generation: seeds → trajectories → captured signals.

use crate::error::DatasetError;
use crate::spec::ExperimentSpec;
use am_dsp::stft::log_spectrogram;
use am_dsp::Signal;
use am_gcode::attacks::Attack;
use am_gcode::slicer::slice_gear;
use am_gcode::GcodeProgram;
use am_printer::config::PrinterConfig;
use am_printer::firmware::execute_program;
use am_printer::trajectory::PrintTrajectory;
use am_sensors::channel::SideChannel;
use am_sensors::interference::Interference;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Signal transformation applied before a detector sees the data
/// (§VIII-A "Spectrograms", Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transform {
    /// The raw captured signal.
    Raw,
    /// The Table III log-magnitude spectrogram.
    Spectrogram,
}

impl Transform {
    /// Both transforms, raw first (the grid's evaluation order).
    pub fn both() -> [Transform; 2] {
        [Transform::Raw, Transform::Spectrogram]
    }
}

impl std::fmt::Display for Transform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Transform::Raw => "Raw",
            Transform::Spectrogram => "Spectro.",
        })
    }
}

/// A run's role in the evaluation (Table I's B/M + usage column).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunRole {
    /// The single benign run used as the reference signal.
    Reference,
    /// Benign run used for OCC training.
    Train(usize),
    /// Benign run used for testing (counts toward FPR).
    TestBenign(usize),
    /// Malicious run (counts toward TPR).
    Malicious {
        /// Table I attack name (e.g. "Void").
        attack: String,
        /// Repetition index.
        index: usize,
    },
}

impl RunRole {
    /// `true` for benign runs (reference, train, benign test).
    pub fn is_benign(&self) -> bool {
        !matches!(self, RunRole::Malicious { .. })
    }

    /// `true` for runs that participate in testing (benign test +
    /// malicious).
    pub fn is_test(&self) -> bool {
        matches!(self, RunRole::TestBenign(_) | RunRole::Malicious { .. })
    }
}

impl std::fmt::Display for RunRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunRole::Reference => write!(f, "reference"),
            RunRole::Train(i) => write!(f, "train#{i}"),
            RunRole::TestBenign(i) => write!(f, "benign#{i}"),
            RunRole::Malicious { attack, index } => write!(f, "{attack}#{index}"),
        }
    }
}

/// One executed run: role + trajectory.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The run's role.
    pub role: RunRole,
    /// Seed used for its time noise and sensors.
    pub seed: u64,
    /// The executed trajectory.
    pub trajectory: PrintTrajectory,
}

/// One planned run: role × program × the printer configuration that
/// executes it. Scenario rows build these explicitly so firmware-level
/// attacks (which leave the program untouched but corrupt the executing
/// config) and exotic kinematics flow through the same dataset pipeline
/// as the paper's G-code attacks.
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// The run's role.
    pub role: RunRole,
    /// The G-code program sent to the (possibly compromised) firmware.
    pub program: Arc<GcodeProgram>,
    /// The printer configuration executing this run — malicious plans may
    /// carry a [`am_printer::attack::FirmwareAttack`] here while the
    /// program stays byte-identical to benign.
    pub config: PrinterConfig,
}

/// All trajectories of one experiment (printer × profile).
#[derive(Debug, Clone)]
pub struct TrajectorySet {
    /// The generating spec.
    pub spec: ExperimentSpec,
    /// The printer configuration used for sensor capture. Defaults to
    /// `spec.printer.config()`; scenario rows override it for non-catalog
    /// kinematics (e.g. a CoreXY frame reusing the UM3 profile constants).
    pub printer_config: PrinterConfig,
    /// Optional benign-labeled interference overlay applied to benign
    /// *test* captures (IP-exfiltration probe leak-back). Never applied
    /// to reference/training runs, so it pressures the false-alarm rate
    /// exactly the way an unmodeled co-located emitter would.
    pub stressor: Option<Interference>,
    /// All runs, reference first.
    pub runs: Vec<RunRecord>,
}

/// One captured side-channel signal with its ground truth.
#[derive(Debug, Clone)]
pub struct Capture {
    /// The run's role.
    pub role: RunRole,
    /// The captured signal (t = 0 at print start).
    pub signal: Signal,
    /// Layer-change times relative to the signal start.
    pub layer_times: Vec<f64>,
}

impl TrajectorySet {
    /// Generates every run of the experiment in parallel (reference,
    /// training, benign test, and the five Table I attacks).
    ///
    /// Fully deterministic: run `i` derives its seed from
    /// `spec.base_seed`.
    ///
    /// # Errors
    ///
    /// Propagates slicing and execution failures.
    pub fn generate(spec: ExperimentSpec) -> Result<Self, DatasetError> {
        Self::generate_with_mix(spec, spec.profile.process_mix())
    }

    /// Like [`TrajectorySet::generate`] with an explicit process mix —
    /// for quick integration tests and custom sweeps.
    ///
    /// # Errors
    ///
    /// Propagates slicing and execution failures.
    pub fn generate_with_mix(
        spec: ExperimentSpec,
        mix: crate::spec::ProcessMix,
    ) -> Result<Self, DatasetError> {
        let slice_cfg = spec.profile.slice_config(spec.printer);
        let benign_program = slice_gear(&slice_cfg)?;
        let printer_cfg = spec.printer.config();

        // Build the work list: (role, program, executing config).
        let mut plans: Vec<RunPlan> = Vec::new();
        let benign_arc = Arc::new(benign_program);
        plans.push(RunPlan {
            role: RunRole::Reference,
            program: benign_arc.clone(),
            config: printer_cfg.clone(),
        });
        for i in 0..mix.train {
            plans.push(RunPlan {
                role: RunRole::Train(i),
                program: benign_arc.clone(),
                config: printer_cfg.clone(),
            });
        }
        for i in 0..mix.test_benign {
            plans.push(RunPlan {
                role: RunRole::TestBenign(i),
                program: benign_arc.clone(),
                config: printer_cfg.clone(),
            });
        }
        for attack in Attack::table1() {
            let program = Arc::new(attack.apply(&benign_arc, &slice_cfg)?);
            for i in 0..mix.malicious_per_attack {
                plans.push(RunPlan {
                    role: RunRole::Malicious {
                        attack: attack.name(),
                        index: i,
                    },
                    program: program.clone(),
                    config: printer_cfg.clone(),
                });
            }
        }
        Self::execute_plans(spec, printer_cfg, plans)
    }

    /// Executes an explicit run plan list — the scenario zoo's entry
    /// point. Run `i` derives its seed from `spec.base_seed` exactly like
    /// [`TrajectorySet::generate`], so a plan list that mirrors the
    /// catalog mix reproduces the catalog set bit-for-bit.
    ///
    /// `capture_config` is the printer used for sensor capture of *every*
    /// run; each plan's own `config` drives execution, which is how
    /// firmware attacks corrupt the physics without touching the sensor
    /// front-end.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    pub fn execute_plans(
        spec: ExperimentSpec,
        capture_config: PrinterConfig,
        plans: Vec<RunPlan>,
    ) -> Result<Self, DatasetError> {
        let noise = spec.profile.time_noise();
        let results: Vec<Result<RunRecord, DatasetError>> = parallel_map(&plans, |(idx, plan)| {
            let seed = spec
                .base_seed
                .wrapping_add(idx as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let trajectory = execute_program(&plan.program, &plan.config, &noise, seed)?;
            Ok(RunRecord {
                role: plan.role.clone(),
                seed,
                trajectory,
            })
        });
        let mut runs = Vec::with_capacity(results.len());
        for r in results {
            runs.push(r?);
        }
        Ok(TrajectorySet {
            spec,
            printer_config: capture_config,
            stressor: None,
            runs,
        })
    }

    /// Returns the set with a benign-labeled interference overlay applied
    /// to benign-test captures (see [`TrajectorySet::stressor`]).
    #[must_use]
    pub fn with_stressor(mut self, stressor: Interference) -> Self {
        self.stressor = Some(stressor);
        self
    }

    /// Captures one side channel for every run, in parallel. Memory for
    /// other channels is never allocated — evaluation loops channels and
    /// drops each set when done.
    ///
    /// # Errors
    ///
    /// Propagates DAQ failures.
    pub fn capture_channel(&self, channel: SideChannel) -> Result<Vec<Capture>, DatasetError> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        self.capture_channel_with_threads(channel, threads)
    }

    /// [`TrajectorySet::capture_channel`] with an explicit worker count, so
    /// callers already running inside a thread pool (the evaluation grid's
    /// capture pre-warm) can parallelize across runs without
    /// oversubscribing the machine.
    ///
    /// # Errors
    ///
    /// Propagates DAQ failures.
    pub fn capture_channel_with_threads(
        &self,
        channel: SideChannel,
        threads: usize,
    ) -> Result<Vec<Capture>, DatasetError> {
        let printer_cfg = &self.printer_config;
        let daq = self.spec.profile.daq(channel);
        let results: Vec<Result<Capture, DatasetError>> =
            parallel_map_with_threads(&self.runs, threads, |(_, run)| {
                let mut signal = channel.capture(&run.trajectory, printer_cfg, &daq, run.seed)?;
                if let Some(stressor) = &self.stressor {
                    if matches!(run.role, RunRole::TestBenign(_)) {
                        // Per-run decorrelation: the probe's keying phase
                        // and broadband floor differ across benign runs.
                        signal = stressor
                            .with_seed(stressor.seed ^ run.seed)
                            .apply(&signal)?;
                    }
                }
                let t0 = run.trajectory.print_start();
                let layer_times = run
                    .trajectory
                    .layer_times()
                    .iter()
                    .map(|t| (t - t0).max(0.0))
                    .collect();
                Ok(Capture {
                    role: run.role.clone(),
                    signal,
                    layer_times,
                })
            });
        results.into_iter().collect()
    }

    /// Captures one channel and transforms every signal into its Table III
    /// log-magnitude spectrogram.
    ///
    /// # Errors
    ///
    /// Propagates capture and STFT failures.
    pub fn capture_spectrogram(&self, channel: SideChannel) -> Result<Vec<Capture>, DatasetError> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        self.capture_spectrogram_with_threads(channel, threads)
    }

    /// [`TrajectorySet::capture_spectrogram`] with an explicit worker count.
    ///
    /// # Errors
    ///
    /// Propagates capture and STFT failures.
    pub fn capture_spectrogram_with_threads(
        &self,
        channel: SideChannel,
        threads: usize,
    ) -> Result<Vec<Capture>, DatasetError> {
        let stft = self.spec.profile.spectrogram(channel);
        let captures = self.capture_channel_with_threads(channel, threads)?;
        captures
            .into_iter()
            .map(|c| {
                let spec = log_spectrogram(&c.signal, &stft)?;
                Ok(Capture {
                    role: c.role,
                    signal: spec,
                    layer_times: c.layer_times,
                })
            })
            .collect()
    }

    /// Captures one channel under the given transform — the single entry
    /// point the evaluation grid uses.
    ///
    /// # Errors
    ///
    /// Propagates capture and STFT failures.
    pub fn capture(
        &self,
        channel: SideChannel,
        transform: Transform,
    ) -> Result<Vec<Capture>, DatasetError> {
        match transform {
            Transform::Raw => self.capture_channel(channel),
            Transform::Spectrogram => self.capture_spectrogram(channel),
        }
    }

    /// [`TrajectorySet::capture`] with an explicit worker count for the
    /// per-run generation fan-out.
    ///
    /// # Errors
    ///
    /// Propagates capture and STFT failures.
    pub fn capture_with_threads(
        &self,
        channel: SideChannel,
        transform: Transform,
        threads: usize,
    ) -> Result<Vec<Capture>, DatasetError> {
        match transform {
            Transform::Raw => self.capture_channel_with_threads(channel, threads),
            Transform::Spectrogram => self.capture_spectrogram_with_threads(channel, threads),
        }
    }

    /// The reference run (always present).
    pub fn reference(&self) -> &RunRecord {
        self.runs
            .iter()
            .find(|r| r.role == RunRole::Reference)
            .expect("generate always produces a reference")
    }
}

/// Simple fork-join parallel map over a slice using crossbeam scoped
/// threads; preserves input order. Falls back to sequential for tiny
/// inputs.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn((usize, &T)) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    parallel_map_with_threads(items, threads, f)
}

/// [`parallel_map`] with an explicit worker count (`threads <= 1` runs
/// sequentially on the caller's thread). Output order is always the input
/// order, so results are deterministic regardless of `threads`.
///
/// Workers claim chunks of the output from a shared queue and write each
/// result through a chunk-owned disjoint slice: no per-item lock, and no
/// global funnel serializing result writes (the previous implementation
/// pushed every result through one `Mutex<&mut Vec<_>>`, so workers spent
/// the tail of each item convoying on it). Chunks are several per worker,
/// so uneven item costs still balance.
pub fn parallel_map_with_threads<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn((usize, &T)) -> R + Sync,
{
    parallel_map_with_worker_state(items, threads, |_| (), |(), item| f(item))
}

/// [`parallel_map_with_threads`] where every worker owns mutable state for
/// its whole lifetime — the hook stage-aware schedulers use to pin scratch
/// arenas (and per-worker telemetry spans) to workers instead of
/// re-creating them per item.
///
/// `init(worker_index)` runs once on each worker thread before it claims
/// work; the state is handed mutably to every item that worker processes
/// and dropped when the worker exits. The sequential path (`threads <= 1`
/// or a single item) builds one state for worker 0 on the caller's
/// thread. State never migrates between threads mid-run, so worker-pinned
/// scratch needs only `Send`.
///
/// Output order is always the input order, so results are deterministic
/// regardless of `threads` — callers must not let the *state* influence
/// results (arenas hold scratch, not answers).
pub fn parallel_map_with_worker_state<T, R, S, I, F>(
    items: &[T],
    threads: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, (usize, &T)) -> R + Sync,
{
    let threads = threads.min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        let mut state = init(0);
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut state, (i, t)))
            .collect();
    }
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    // 4 chunks per worker: enough granularity to balance uneven item
    // costs, queue pops stay amortized over whole chunks.
    let chunk_len = items.len().div_ceil(threads * 4).max(1);
    let mut units: Vec<(usize, &mut [Option<R>])> = Vec::new();
    for (k, slice) in out.chunks_mut(chunk_len).enumerate() {
        units.push((k * chunk_len, slice));
    }
    // Pop from the front so early (often larger-cost) items start first.
    units.reverse();
    let queue = parking_lot::Mutex::new(units);
    crossbeam::scope(|scope| {
        for w in 0..threads {
            let queue = &queue;
            let init = &init;
            let f = &f;
            scope.spawn(move |_| {
                let mut state = init(w);
                loop {
                    let unit = queue.lock().pop();
                    let Some((start, slice)) = unit else { break };
                    for (off, slot) in slice.iter_mut().enumerate() {
                        let i = start + off;
                        *slot = Some(f(&mut state, (i, &items[i])));
                    }
                }
            });
        }
    })
    .expect("worker threads do not panic");
    out.into_iter()
        .map(|o| o.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Profile;
    use am_printer::config::PrinterModel;

    fn tiny_spec() -> ExperimentSpec {
        // Use the Small profile but shrink repetition counts via a custom
        // check — generation honors the profile's mix, so tests just use
        // Small directly (36 runs, ~50 ms each to execute).
        ExperimentSpec::small(PrinterModel::Um3)
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |(i, &v)| {
            assert_eq!(i, v);
            v * 2
        });
        assert_eq!(out, (0..100).map(|v| v * 2).collect::<Vec<_>>());
        let empty: Vec<usize> = vec![];
        assert!(parallel_map(&empty, |(_, &v)| v).is_empty());
    }

    #[test]
    fn parallel_map_order_invariant_across_thread_counts() {
        // Uneven per-item cost: workers finish chunks out of order, but the
        // output must still land in input order for every worker count.
        let items: Vec<usize> = (0..257).collect();
        let expected: Vec<u64> = items
            .iter()
            .map(|&v| {
                let mut acc = v as u64;
                for k in 0..(v as u64 % 17) * 1000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                acc
            })
            .collect();
        for threads in [1usize, 2, 3, 8, 64] {
            let out = parallel_map_with_threads(&items, threads, |(i, &v)| {
                assert_eq!(i, v);
                let mut acc = v as u64;
                for k in 0..(v as u64 % 17) * 1000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                acc
            });
            assert_eq!(out, expected, "threads={threads}");
        }
    }

    #[test]
    fn worker_state_is_pinned_and_results_stay_ordered() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<usize> = (0..97).collect();
        for threads in [1usize, 2, 5] {
            let inits = AtomicUsize::new(0);
            // Each worker's state remembers its worker index and counts the
            // items it processed; results must be input-ordered regardless.
            let out = parallel_map_with_worker_state(
                &items,
                threads,
                |w| {
                    inits.fetch_add(1, Ordering::Relaxed);
                    (w, 0usize)
                },
                |state, (i, &v)| {
                    assert_eq!(i, v);
                    state.1 += 1;
                    assert!(state.0 < threads, "worker index out of range");
                    v * 3
                },
            );
            assert_eq!(out, items.iter().map(|&v| v * 3).collect::<Vec<_>>());
            // One state per worker, never more (a worker that finds the
            // queue already drained still built its state first).
            assert_eq!(inits.load(Ordering::Relaxed), threads.min(items.len()));
        }
    }

    #[test]
    fn capture_channel_explicit_threads_matches_auto() {
        let set = TrajectorySet::generate(tiny_spec()).unwrap();
        let auto = set.capture_channel(SideChannel::Mag).unwrap();
        let one = set
            .capture_channel_with_threads(SideChannel::Mag, 1)
            .unwrap();
        let four = set
            .capture_channel_with_threads(SideChannel::Mag, 4)
            .unwrap();
        assert_eq!(auto.len(), one.len());
        for ((a, b), c) in auto.iter().zip(&one).zip(&four) {
            assert_eq!(a.role, b.role);
            for ch in 0..a.signal.channels() {
                assert_eq!(a.signal.channel(ch), b.signal.channel(ch));
                assert_eq!(b.signal.channel(ch), c.signal.channel(ch));
            }
            assert_eq!(a.layer_times, c.layer_times);
        }
    }

    #[test]
    fn generate_full_small_set() {
        let set = TrajectorySet::generate(tiny_spec()).unwrap();
        let mix = Profile::Small.process_mix();
        assert_eq!(set.runs.len(), mix.total_runs());
        assert_eq!(set.reference().role, RunRole::Reference);
        // Five attacks present.
        let attacks: std::collections::HashSet<&str> = set
            .runs
            .iter()
            .filter_map(|r| match &r.role {
                RunRole::Malicious { attack, .. } => Some(attack.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(attacks.len(), 5);
        // Benign runs share the nominal plan; different seeds give
        // different wall clocks.
        let durations: Vec<f64> = set
            .runs
            .iter()
            .filter(|r| r.role.is_benign())
            .map(|r| r.trajectory.duration())
            .collect();
        let min = durations.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = durations.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min > 0.05, "time noise must spread durations");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TrajectorySet::generate(tiny_spec()).unwrap();
        let b = TrajectorySet::generate(tiny_spec()).unwrap();
        assert_eq!(a.runs.len(), b.runs.len());
        for (x, y) in a.runs.iter().zip(b.runs.iter()) {
            assert_eq!(x.role, y.role);
            assert_eq!(x.trajectory.duration(), y.trajectory.duration());
        }
    }

    #[test]
    fn capture_channel_shapes() {
        let set = TrajectorySet::generate(tiny_spec()).unwrap();
        let caps = set.capture_channel(SideChannel::Mag).unwrap();
        assert_eq!(caps.len(), set.runs.len());
        for c in &caps {
            assert_eq!(c.signal.channels(), 3);
            assert!(c.signal.len() > 100);
            assert!(!c.layer_times.is_empty());
            assert!(c.layer_times[0] >= 0.0);
        }
    }

    #[test]
    fn stressor_overlays_only_benign_test_captures() {
        let set = TrajectorySet::generate(tiny_spec()).unwrap();
        let clean = set.capture_channel(SideChannel::Mag).unwrap();
        let stressed_set = set.clone().with_stressor(Interference::exfil_probe(7));
        let stressed = stressed_set.capture_channel(SideChannel::Mag).unwrap();
        let again = stressed_set.capture_channel(SideChannel::Mag).unwrap();
        for ((a, b), c) in clean.iter().zip(&stressed).zip(&again) {
            assert_eq!(a.role, b.role);
            let changed =
                (0..a.signal.channels()).any(|ch| a.signal.channel(ch) != b.signal.channel(ch));
            assert_eq!(
                changed,
                matches!(a.role, RunRole::TestBenign(_)),
                "stressor must touch exactly the benign test runs ({})",
                a.role
            );
            // Overlay is deterministic across captures.
            for ch in 0..b.signal.channels() {
                assert_eq!(b.signal.channel(ch), c.signal.channel(ch));
            }
        }
    }

    #[test]
    fn capture_spectrogram_shapes() {
        let set = TrajectorySet::generate(tiny_spec()).unwrap();
        let caps = set.capture_spectrogram(SideChannel::Mag).unwrap();
        let stft = Profile::Small.spectrogram(SideChannel::Mag);
        let fs = Profile::Small.fs(SideChannel::Mag);
        for c in &caps {
            assert_eq!(c.signal.channels(), 3 * stft.bins(fs));
            assert!((c.signal.fs() - 1.0 / stft.delta_t).abs() < 1e-6);
        }
    }
}
