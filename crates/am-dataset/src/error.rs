//! Error type for dataset generation.

use std::error::Error;
use std::fmt;

/// Errors from dataset generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetError {
    /// Slicing the part failed.
    Gcode(am_gcode::GcodeError),
    /// Executing a run failed.
    Printer(am_printer::PrinterError),
    /// Capturing a signal failed.
    Dsp(am_dsp::DspError),
    /// The spec was inconsistent.
    InvalidSpec(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Gcode(e) => write!(f, "slicing failed: {e}"),
            DatasetError::Printer(e) => write!(f, "execution failed: {e}"),
            DatasetError::Dsp(e) => write!(f, "capture failed: {e}"),
            DatasetError::InvalidSpec(m) => write!(f, "invalid spec: {m}"),
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Gcode(e) => Some(e),
            DatasetError::Printer(e) => Some(e),
            DatasetError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<am_gcode::GcodeError> for DatasetError {
    fn from(e: am_gcode::GcodeError) -> Self {
        DatasetError::Gcode(e)
    }
}

impl From<am_printer::PrinterError> for DatasetError {
    fn from(e: am_printer::PrinterError) -> Self {
        DatasetError::Printer(e)
    }
}

impl From<am_dsp::DspError> for DatasetError {
    fn from(e: am_dsp::DspError) -> Self {
        DatasetError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e: DatasetError = am_dsp::DspError::NoChannels.into();
        assert!(e.to_string().contains("capture"));
        assert!(DatasetError::InvalidSpec("x".into())
            .to_string()
            .contains("x"));
    }
}
