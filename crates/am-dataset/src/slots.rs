//! Generic memoizing slot map — the shared discipline behind the
//! evaluation pipeline's stores ([`CaptureStore`](crate::CaptureStore)
//! and am-eval's `FitStore`).
//!
//! A [`KeyedSlots`] owns a fixed key set declared at construction, one
//! `parking_lot` mutex per key. The first requester of a key generates
//! the value while holding only its own slot's lock; concurrent
//! requesters of the *same* key block until it is ready (never generating
//! a duplicate); requests for *different* keys proceed in parallel.
//! Every store built on it gets the same instrumentation for free:
//! hit/miss/generation/lock-wait counters in [`SlotStats`] plus
//! `{prefix}.lookups` / `{prefix}.hits` / `{prefix}.misses` telemetry
//! counters, a `{prefix}.lock_wait` histogram, and a `{prefix}.generate`
//! span around each generation.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Cache counters of a [`KeyedSlots`]-backed store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SlotStats {
    /// Requests served from a populated slot.
    pub hits: usize,
    /// Requests that had to generate the value.
    pub misses: usize,
    /// Nanoseconds spent generating values.
    pub generation_nanos: u64,
    /// Nanoseconds spent waiting to acquire slot locks — time a requester
    /// was blocked behind another thread generating (or briefly holding)
    /// the same key.
    pub blocked_nanos: u64,
}

impl SlotStats {
    /// Fraction of requests served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Seconds spent generating values.
    pub fn generation_seconds(&self) -> f64 {
        self.generation_nanos as f64 / 1e9
    }

    /// Seconds requesters spent blocked on slot locks.
    pub fn blocked_seconds(&self) -> f64 {
        self.blocked_nanos as f64 / 1e9
    }

    /// Accumulates another store's counters.
    pub fn merge(&mut self, other: &SlotStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.generation_nanos += other.generation_nanos;
        self.blocked_nanos += other.blocked_nanos;
    }
}

/// A fixed-key memoizing slot map with per-slot locking and uniform
/// telemetry (see the [module docs](self)).
///
/// Keys are compared linearly — the stores built on this hold at most a
/// few dozen keys, where a scan beats hashing.
pub struct KeyedSlots<K, V> {
    slots: Vec<(K, Mutex<Option<V>>)>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    generation_nanos: AtomicU64,
    blocked_nanos: AtomicU64,
    lookups_counter: am_telemetry::Counter,
    hits_counter: am_telemetry::Counter,
    misses_counter: am_telemetry::Counter,
    lock_wait: am_telemetry::Histogram,
    generate: am_telemetry::Histogram,
}

impl<K: PartialEq, V: Clone> KeyedSlots<K, V> {
    /// Creates an empty store over the given key set (duplicates are
    /// dropped). `prefix` names the telemetry series, e.g. `"capture"` →
    /// `capture.lookups`, `capture.hits`, `capture.misses`,
    /// `capture.lock_wait`, `capture.generate`.
    pub fn new(prefix: &str, keys: impl IntoIterator<Item = K>) -> Self {
        let mut slots: Vec<(K, Mutex<Option<V>>)> = Vec::new();
        for key in keys {
            if !slots.iter().any(|(k, _)| *k == key) {
                slots.push((key, Mutex::new(None)));
            }
        }
        KeyedSlots {
            slots,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            generation_nanos: AtomicU64::new(0),
            blocked_nanos: AtomicU64::new(0),
            lookups_counter: am_telemetry::counter(&format!("{prefix}.lookups")),
            hits_counter: am_telemetry::counter(&format!("{prefix}.hits")),
            misses_counter: am_telemetry::counter(&format!("{prefix}.misses")),
            lock_wait: am_telemetry::histogram(&format!("{prefix}.lock_wait")),
            generate: am_telemetry::histogram(&format!("{prefix}.generate")),
        }
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no keys are registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns the value for `key`, running `generate` under the slot
    /// lock on first request. A failed generation is not cached; the next
    /// request retries.
    ///
    /// # Panics
    ///
    /// Panics if `key` was not registered at construction — the stores
    /// built on this declare their full key set up front, so an unknown
    /// key is a programming error, not a runtime condition.
    ///
    /// # Errors
    ///
    /// Propagates `generate`'s error.
    pub fn get_or_insert_with<E>(
        &self,
        key: &K,
        generate: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        self.lookups_counter.incr();
        let (_, slot) = self
            .slots
            .iter()
            .find(|(k, _)| k == key)
            .expect("key registered at KeyedSlots construction");
        let wait0 = std::time::Instant::now();
        let mut slot = slot.lock();
        let waited = wait0.elapsed();
        self.blocked_nanos
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        self.lock_wait.record(waited);
        if let Some(value) = slot.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.hits_counter.incr();
            return Ok(value.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.misses_counter.incr();
        let _gen_span = am_telemetry::SpanGuard::start(&self.generate);
        let t0 = std::time::Instant::now();
        let value = generate()?;
        self.generation_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        *slot = Some(value.clone());
        Ok(value)
    }

    /// Returns the value for `key` only if it is already populated —
    /// never generates, so code running inside an already-parallel stage
    /// can use this to *structurally* rule out nested generation work.
    /// Counts as a hit when populated; an empty slot counts nothing
    /// (`misses` keeps meaning "generations", as
    /// [`KeyedSlots::get_or_insert_with`] defines it).
    ///
    /// # Panics
    ///
    /// Panics if `key` was not registered at construction, like
    /// [`KeyedSlots::get_or_insert_with`].
    pub fn try_get(&self, key: &K) -> Option<V> {
        let (_, slot) = self
            .slots
            .iter()
            .find(|(k, _)| k == key)
            .expect("key registered at KeyedSlots construction");
        let wait0 = std::time::Instant::now();
        let slot = slot.lock();
        let waited = wait0.elapsed();
        self.blocked_nanos
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        self.lock_wait.record(waited);
        let value = slot.as_ref().cloned();
        if value.is_some() {
            self.lookups_counter.incr();
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.hits_counter.incr();
        }
        value
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> SlotStats {
        SlotStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            generation_nanos: self.generation_nanos.load(Ordering::Relaxed),
            blocked_nanos: self.blocked_nanos.load(Ordering::Relaxed),
        }
    }
}

impl<K: std::fmt::Debug, V> std::fmt::Debug for KeyedSlots<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedSlots")
            .field(
                "keys",
                &self.slots.iter().map(|(k, _)| k).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn generates_once_per_key_and_dedups_registration() {
        let slots: KeyedSlots<u32, u32> = KeyedSlots::new("test.slots", [1, 2, 2, 3]);
        assert_eq!(slots.len(), 3);
        assert!(!slots.is_empty());
        let calls = AtomicUsize::new(0);
        for _ in 0..3 {
            let v: Result<u32, ()> = slots.get_or_insert_with(&2, || {
                calls.fetch_add(1, Ordering::Relaxed);
                Ok(20)
            });
            assert_eq!(v.unwrap(), 20);
        }
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        let stats = slots.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn failed_generation_is_retried() {
        let slots: KeyedSlots<u32, u32> = KeyedSlots::new("test.retry", [7]);
        let first: Result<u32, &str> = slots.get_or_insert_with(&7, || Err("boom"));
        assert_eq!(first.unwrap_err(), "boom");
        let second: Result<u32, &str> = slots.get_or_insert_with(&7, || Ok(70));
        assert_eq!(second.unwrap(), 70);
        // The failure still counted as a miss (it ran the generator).
        assert_eq!(slots.stats().misses, 2);
    }

    #[test]
    fn try_get_never_generates() {
        let slots: KeyedSlots<u32, u32> = KeyedSlots::new("test.tryget", [4]);
        assert_eq!(slots.try_get(&4), None);
        // An empty probe is not a miss: misses count generations.
        assert_eq!(slots.stats().misses, 0);
        assert_eq!(slots.stats().hits, 0);
        let _: Result<u32, ()> = slots.get_or_insert_with(&4, || Ok(40));
        assert_eq!(slots.try_get(&4), Some(40));
        assert_eq!(slots.stats().hits, 1);
        assert_eq!(slots.stats().misses, 1);
    }

    #[test]
    #[should_panic(expected = "key registered")]
    fn unknown_key_panics() {
        let slots: KeyedSlots<u32, u32> = KeyedSlots::new("test.unknown", [1]);
        let _: Result<u32, ()> = slots.get_or_insert_with(&9, || Ok(0));
    }

    #[test]
    fn concurrent_same_key_generates_once() {
        let slots: KeyedSlots<u32, u32> = KeyedSlots::new("test.concurrent", [5]);
        let calls = AtomicUsize::new(0);
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    let v: Result<u32, ()> = slots.get_or_insert_with(&5, || {
                        calls.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(50)
                    });
                    assert_eq!(v.unwrap(), 50);
                });
            }
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1, "exactly one generation");
        let stats = slots.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
        assert!(
            stats.blocked_nanos > 0,
            "racing requesters must observe lock wait"
        );
    }
}
