//! Experiment dataset generation (§VIII-A, Tables I–IV).
//!
//! The paper's evaluation runs 151 benign + 100 malicious prints per
//! printer, recording six side channels. This crate reproduces that
//! pipeline end-to-end in simulation:
//!
//! 1. [`spec`]: the experiment constants — the process mix of Table I,
//!    per-channel acquisition of Table II, spectrograms of Table III, and
//!    DWM parameters of Table IV — in two profiles: `Paper` (the
//!    original's scale) and `Small` (a proportionally scaled version that
//!    runs on a laptop; see DESIGN.md §3 for why scaling preserves the
//!    detection behaviour),
//! 2. [`generate`]: seeds → sliced G-code → noisy firmware execution →
//!    trajectories → captured side-channel signals, parallelized with
//!    crossbeam and fully reproducible from the experiment seed.

pub mod error;
pub mod generate;
pub mod slots;
pub mod spec;
pub mod store;

pub use error::DatasetError;
pub use generate::{Capture, RunPlan, RunRecord, RunRole, TrajectorySet, Transform};
pub use slots::{KeyedSlots, SlotStats};
pub use spec::{ExperimentSpec, ProcessMix, Profile};
pub use store::{CaptureStats, CaptureStore, SharedCaptures};
