//! Experiment constants: Tables I–IV in two profiles.

use am_dsp::stft::StftConfig;
use am_dsp::window::WindowKind;
use am_gcode::slicer::SliceConfig;
use am_printer::config::PrinterModel;
use am_printer::noise::TimeNoise;
use am_sensors::channel::SideChannel;
use am_sensors::daq::DaqConfig;
use am_sync::DwmParams;
use serde::{Deserialize, Serialize};

/// Scale of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Profile {
    /// Laptop-scale: smaller gear, reduced sampling rates and repetition
    /// counts. Relative statistics (time noise vs window sizes, attack
    /// deviation vs benign variation) are preserved.
    Small,
    /// The paper's full scale (Tables I–IV verbatim). Hours of simulated
    /// print time per run — use for spot checks, not sweeps.
    Paper,
}

/// Table I's process mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessMix {
    /// Benign runs used for OCC training (paper: 50).
    pub train: usize,
    /// Benign runs used for testing (paper: 100).
    pub test_benign: usize,
    /// Malicious runs per attack type (paper: 20; 5 attack types).
    pub malicious_per_attack: usize,
}

impl ProcessMix {
    /// Total number of runs including the single reference.
    pub fn total_runs(&self) -> usize {
        1 + self.train + self.test_benign + self.malicious_per_attack * 5
    }
}

impl Profile {
    /// Table I process mix for this profile.
    pub fn process_mix(&self) -> ProcessMix {
        match self {
            Profile::Small => ProcessMix {
                train: 8,
                test_benign: 12,
                malicious_per_attack: 3,
            },
            Profile::Paper => ProcessMix {
                train: 50,
                test_benign: 100,
                malicious_per_attack: 20,
            },
        }
    }

    /// Table II sampling rate for a channel.
    pub fn fs(&self, channel: SideChannel) -> f64 {
        match self {
            Profile::Paper => channel.paper_fs(),
            Profile::Small => match channel {
                SideChannel::Acc => 200.0,
                SideChannel::Tmp => 200.0,
                SideChannel::Mag => 50.0,
                SideChannel::Aud => 1200.0,
                SideChannel::Ept => 2400.0,
                SideChannel::Pwr => 600.0,
            },
        }
    }

    /// DAQ configuration for a channel (Table II bits + realistic gain /
    /// noise / frame-drop behaviour).
    pub fn daq(&self, channel: SideChannel) -> DaqConfig {
        DaqConfig::realistic(self.fs(channel), channel.paper_bits())
    }

    /// Table III spectrogram configuration for a channel.
    ///
    /// Paper profile: the published Δf / Δt / window constants. Small
    /// profile: Δf and Δt chosen so windows have ≥ 10 samples and the
    /// spectrogram rate stays in the 10–40 Hz band the synchronizers
    /// operate on.
    pub fn spectrogram(&self, channel: SideChannel) -> StftConfig {
        let (delta_f, delta_t, window) = match self {
            Profile::Paper => match channel {
                SideChannel::Acc | SideChannel::Tmp => {
                    (20.0, 1.0 / 80.0, WindowKind::BlackmanHarris)
                }
                SideChannel::Mag => (5.0, 1.0 / 20.0, WindowKind::BlackmanHarris),
                SideChannel::Aud | SideChannel::Ept => {
                    (120.0, 1.0 / 240.0, WindowKind::BlackmanHarris)
                }
                SideChannel::Pwr => (60.0, 1.0 / 120.0, WindowKind::Boxcar),
            },
            Profile::Small => match channel {
                SideChannel::Acc | SideChannel::Tmp => {
                    (10.0, 1.0 / 20.0, WindowKind::BlackmanHarris)
                }
                SideChannel::Mag => (5.0, 1.0 / 10.0, WindowKind::BlackmanHarris),
                SideChannel::Aud => (20.0, 1.0 / 40.0, WindowKind::BlackmanHarris),
                SideChannel::Ept => (20.0, 1.0 / 40.0, WindowKind::BlackmanHarris),
                SideChannel::Pwr => (20.0, 1.0 / 20.0, WindowKind::Boxcar),
            },
        };
        StftConfig::new(delta_f, delta_t, window).expect("profile constants are valid")
    }

    /// Table IV DWM parameters for a printer.
    pub fn dwm_params(&self, printer: PrinterModel) -> DwmParams {
        match self {
            Profile::Paper => match printer {
                PrinterModel::Um3 => DwmParams::um3(),
                PrinterModel::Rm3 => DwmParams::rm3(),
            },
            // Scaled runs are minutes, not hours; window-to-window time
            // noise is bounded by the gap scale (~0.1 s), so the bias can
            // be much tighter than the paper's hour-scale prints need —
            // important because the gear's teeth make window content
            // periodic (exactly the ambiguity TDEB exists to suppress).
            Profile::Small => match printer {
                PrinterModel::Um3 => DwmParams {
                    t_win: 4.0,
                    t_hop: 2.0,
                    t_ext: 1.0,
                    t_sigma: 0.5,
                    eta: 0.1,
                },
                // §VI-C's sweep (see examples/parameter_tuning) converges
                // at 4 s windows for the small-profile prints on both
                // machines.
                PrinterModel::Rm3 => DwmParams {
                    t_win: 4.0,
                    t_hop: 2.0,
                    t_ext: 1.0,
                    t_sigma: 0.5,
                    eta: 0.1,
                },
            },
        }
    }

    /// The gear slicing config for a printer at this profile's scale.
    pub fn slice_config(&self, printer: PrinterModel) -> SliceConfig {
        let bed = printer.config().bed_center();
        let mut cfg = match self {
            Profile::Paper => SliceConfig::paper_gear(),
            Profile::Small => {
                let mut c = SliceConfig::small_gear();
                // Slightly larger than the unit-test gear so each run has
                // 100+ s of motion (enough DWM windows to discriminate).
                c.gear_teeth = 12;
                c.gear_root_radius = 10.0;
                c.gear_tip_radius = 12.0;
                c.height = 2.0; // 10 layers at 0.2 mm
                c
            }
        };
        cfg.center = am_gcode::geometry::Point2::new(bed.x, bed.y);
        if printer == PrinterModel::Rm3 {
            cfg.filament_diameter = 1.75;
        }
        cfg
    }

    /// Time-noise model (same for both profiles; it is a property of the
    /// machine, not the experiment scale).
    pub fn time_noise(&self) -> TimeNoise {
        TimeNoise::default_printer()
    }

    /// OCC margin used for NSYNC in the paper's evaluation (§VIII-E).
    pub fn nsync_r(&self) -> f64 {
        0.3
    }

    /// The two Bayens retrieval window sizes (paper: 90 s and 120 s;
    /// scaled proportionally to the Small profile's run length).
    pub fn bayens_windows(&self) -> [f64; 2] {
        match self {
            Profile::Paper => [90.0, 120.0],
            Profile::Small => [20.0, 30.0],
        }
    }
}

impl std::fmt::Display for Profile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Profile::Small => "small",
            Profile::Paper => "paper",
        })
    }
}

/// A complete experiment description: profile + printer + base seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Experiment scale.
    pub profile: Profile,
    /// Which printer.
    pub printer: PrinterModel,
    /// Base seed; every run derives its own seed from this.
    pub base_seed: u64,
}

impl ExperimentSpec {
    /// The default small-profile experiment for a printer.
    pub fn small(printer: PrinterModel) -> Self {
        ExperimentSpec {
            profile: Profile::Small,
            printer,
            base_seed: 0x5EED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mix_matches_table1() {
        let m = Profile::Paper.process_mix();
        assert_eq!(m.train, 50);
        assert_eq!(m.test_benign, 100);
        assert_eq!(m.malicious_per_attack, 20);
        // 151 benign + 100 malicious per printer.
        assert_eq!(m.total_runs(), 251);
    }

    #[test]
    fn paper_fs_matches_table2() {
        assert_eq!(Profile::Paper.fs(SideChannel::Aud), 48_000.0);
        assert_eq!(Profile::Paper.fs(SideChannel::Mag), 100.0);
        assert!(Profile::Small.fs(SideChannel::Aud) < 48_000.0);
    }

    #[test]
    fn paper_spectrograms_match_table3_bin_counts() {
        // ACC: 101 bins; MAG: 11; AUD: 201; EPT: 401; PWR: 101.
        let p = Profile::Paper;
        assert_eq!(p.spectrogram(SideChannel::Acc).bins(4000.0), 101);
        assert_eq!(p.spectrogram(SideChannel::Mag).bins(100.0), 11);
        assert_eq!(p.spectrogram(SideChannel::Aud).bins(48_000.0), 201);
        assert_eq!(p.spectrogram(SideChannel::Ept).bins(96_000.0), 401);
        assert_eq!(p.spectrogram(SideChannel::Pwr).bins(12_000.0), 101);
        assert_eq!(p.spectrogram(SideChannel::Pwr).window, WindowKind::Boxcar);
    }

    #[test]
    fn small_spectrograms_have_sane_shapes() {
        let p = Profile::Small;
        for ch in SideChannel::all() {
            let cfg = p.spectrogram(ch);
            let fs = p.fs(ch);
            assert!(cfg.window_len(fs) >= 10, "{ch}: window too short");
            let spec_fs = 1.0 / cfg.delta_t;
            assert!((5.0..=50.0).contains(&spec_fs), "{ch}: spec rate {spec_fs}");
        }
    }

    #[test]
    fn dwm_params_match_table4_at_paper_scale() {
        assert_eq!(
            Profile::Paper.dwm_params(PrinterModel::Um3),
            DwmParams::um3()
        );
        assert_eq!(
            Profile::Paper.dwm_params(PrinterModel::Rm3),
            DwmParams::rm3()
        );
    }

    #[test]
    fn slice_configs_are_reachable_parts() {
        for profile in [Profile::Small, Profile::Paper] {
            for printer in PrinterModel::both() {
                let cfg = profile.slice_config(printer);
                let prog = am_gcode::slicer::slice_gear(&cfg).unwrap();
                assert!(prog.layer_count() >= 4, "{profile}/{printer}");
            }
        }
    }

    #[test]
    fn display_and_default_spec() {
        assert_eq!(Profile::Small.to_string(), "small");
        let s = ExperimentSpec::small(PrinterModel::Um3);
        assert_eq!(s.profile, Profile::Small);
        assert_eq!(Profile::Small.nsync_r(), 0.3);
    }
}
