//! Memoized capture artifacts for one experiment.
//!
//! The evaluation grid asks for the same (channel × transform) capture
//! set once per detector; without memoization every cell re-simulates the
//! DAQ (and the STFT on top of it). [`CaptureStore`] generates each
//! artifact exactly once per key behind a per-slot `parking_lot` mutex:
//! the first requester generates while holding only its own slot's lock,
//! concurrent requesters of the *same* key block until it is ready, and
//! requests for *different* keys proceed in parallel. Spectrogram slots
//! are derived from the raw slot of the same channel, so the underlying
//! DAQ simulation also runs at most once per channel.
//!
//! Captures are handed out as `Arc`s, so splits built over the store are
//! cheap views: cloning a capture set is a pointer bump, not a signal
//! copy.

use crate::error::DatasetError;
use crate::generate::{parallel_map_with_threads, Capture, TrajectorySet, Transform};
use am_dsp::stft::log_spectrogram;
use am_sensors::channel::SideChannel;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A memoized capture set: one `Arc<Capture>` per run, reference first.
pub type SharedCaptures = Arc<Vec<Arc<Capture>>>;

/// Cache counters of a [`CaptureStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CaptureStats {
    /// Requests served from a populated slot.
    pub hits: usize,
    /// Requests that had to generate the artifact.
    pub misses: usize,
    /// Nanoseconds spent generating artifacts (capture + STFT).
    pub generation_nanos: u64,
    /// Nanoseconds spent waiting to acquire slot locks — time a requester
    /// was blocked behind another thread generating (or briefly holding)
    /// the same key. Near-zero when the grid pre-warms its captures.
    pub blocked_nanos: u64,
}

impl CaptureStats {
    /// Fraction of requests served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Seconds spent generating artifacts.
    pub fn generation_seconds(&self) -> f64 {
        self.generation_nanos as f64 / 1e9
    }

    /// Seconds requesters spent blocked on slot locks.
    pub fn blocked_seconds(&self) -> f64 {
        self.blocked_nanos as f64 / 1e9
    }

    /// Accumulates another store's counters.
    pub fn merge(&mut self, other: &CaptureStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.generation_nanos += other.generation_nanos;
        self.blocked_nanos += other.blocked_nanos;
    }
}

const CHANNELS: usize = 6;
const TRANSFORMS: usize = 2;

fn slot_index(channel: SideChannel, transform: Transform) -> usize {
    let c = SideChannel::all()
        .iter()
        .position(|&ch| ch == channel)
        .expect("all() covers every channel");
    let t = match transform {
        Transform::Raw => 0,
        Transform::Spectrogram => 1,
    };
    c * TRANSFORMS + t
}

/// Lazily generated, memoized (channel × transform) capture sets over one
/// [`TrajectorySet`].
pub struct CaptureStore<'a> {
    set: &'a TrajectorySet,
    /// Worker count for the per-run fan-out *inside* one generation.
    threads: usize,
    slots: Vec<Mutex<Option<SharedCaptures>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    generation_nanos: AtomicU64,
    blocked_nanos: AtomicU64,
}

impl<'a> CaptureStore<'a> {
    /// Creates an empty store over a trajectory set; generation fans out
    /// across all available cores.
    pub fn new(set: &'a TrajectorySet) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::with_threads(set, threads)
    }

    /// [`CaptureStore::new`] with an explicit worker count for generation.
    /// The evaluation grid passes its own thread budget here so capture
    /// generation parallelizes *within* a capture set instead of
    /// oversubscribing the machine from inside already-parallel cells.
    pub fn with_threads(set: &'a TrajectorySet, threads: usize) -> Self {
        CaptureStore {
            set,
            threads: threads.max(1),
            slots: (0..CHANNELS * TRANSFORMS)
                .map(|_| Mutex::new(None))
                .collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            generation_nanos: AtomicU64::new(0),
            blocked_nanos: AtomicU64::new(0),
        }
    }

    /// The underlying trajectory set.
    pub fn set(&self) -> &TrajectorySet {
        self.set
    }

    /// Returns the capture set for a key, generating it on first request.
    ///
    /// # Errors
    ///
    /// Propagates capture and STFT failures. A failed generation is not
    /// cached; the next request retries.
    pub fn get(
        &self,
        channel: SideChannel,
        transform: Transform,
    ) -> Result<SharedCaptures, DatasetError> {
        am_telemetry::count!("capture.lookups");
        let wait0 = std::time::Instant::now();
        let mut slot = self.slots[slot_index(channel, transform)].lock();
        let waited = wait0.elapsed();
        self.blocked_nanos
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        if am_telemetry::enabled() {
            static LOCK_WAIT: std::sync::OnceLock<am_telemetry::Histogram> =
                std::sync::OnceLock::new();
            LOCK_WAIT
                .get_or_init(|| am_telemetry::histogram("capture.lock_wait"))
                .record(waited);
        }
        if let Some(captures) = slot.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            am_telemetry::count!("capture.hits");
            return Ok(captures.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        am_telemetry::count!("capture.misses");
        let _gen_span = am_telemetry::span!("capture.generate");
        let t0 = std::time::Instant::now();
        let captures: SharedCaptures = match transform {
            Transform::Raw => Arc::new(
                self.set
                    .capture_channel_with_threads(channel, self.threads)?
                    .into_iter()
                    .map(Arc::new)
                    .collect(),
            ),
            Transform::Spectrogram => {
                // Derive from the raw slot so the DAQ simulation runs at
                // most once per channel. Different mutex, no lock cycle.
                let raw = self.get(channel, Transform::Raw)?;
                let stft = self.set.spec.profile.spectrogram(channel);
                let specs: Vec<Result<Arc<Capture>, DatasetError>> =
                    parallel_map_with_threads(&raw, self.threads, |(_, capture)| {
                        let spec = log_spectrogram(&capture.signal, &stft)?;
                        Ok(Arc::new(Capture {
                            role: capture.role.clone(),
                            signal: spec,
                            layer_times: capture.layer_times.clone(),
                        }))
                    });
                Arc::new(specs.into_iter().collect::<Result<Vec<_>, _>>()?)
            }
        };
        self.generation_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        *slot = Some(captures.clone());
        Ok(captures)
    }

    /// Generates every distinct key up front, one key at a time, with the
    /// per-run fan-out parallelized across this store's thread budget.
    ///
    /// This is the contention-free alternative to letting grid workers
    /// fault captures in on demand: on-demand faulting makes the first
    /// requester generate single-threadedly while every other worker
    /// wanting the same key blocks on its slot lock. After a pre-warm,
    /// every worker request is an uncontended cache hit.
    ///
    /// Duplicate keys are deduplicated; each distinct key still counts as
    /// one miss in [`CaptureStore::stats`].
    ///
    /// # Errors
    ///
    /// Propagates capture and STFT failures.
    pub fn prewarm(&self, keys: &[(SideChannel, Transform)]) -> Result<(), DatasetError> {
        let mut seen: Vec<(SideChannel, Transform)> = Vec::new();
        for &key in keys {
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        // Raw keys first: spectrogram generation derives from the raw slot
        // of the same channel, so this orders dependencies before users.
        seen.sort_by_key(|&(_, t)| matches!(t, Transform::Spectrogram));
        for &(channel, transform) in &seen {
            self.get(channel, transform)?;
        }
        Ok(())
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> CaptureStats {
        CaptureStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            generation_nanos: self.generation_nanos.load(Ordering::Relaxed),
            blocked_nanos: self.blocked_nanos.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for CaptureStore<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaptureStore")
            .field("printer", &self.set.spec.printer)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ExperimentSpec, ProcessMix};
    use am_printer::config::PrinterModel;

    fn tiny_set() -> TrajectorySet {
        TrajectorySet::generate_with_mix(
            ExperimentSpec::small(PrinterModel::Um3),
            ProcessMix {
                train: 1,
                test_benign: 1,
                malicious_per_attack: 0,
            },
        )
        .unwrap()
    }

    #[test]
    fn memoizes_each_key_once() {
        let set = tiny_set();
        let store = CaptureStore::new(&set);
        let a = store.get(SideChannel::Mag, Transform::Raw).unwrap();
        let b = store.get(SideChannel::Mag, Transform::Raw).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second request must be a cache hit");
        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert!(stats.generation_seconds() > 0.0);
    }

    #[test]
    fn spectrogram_reuses_raw_capture() {
        let set = tiny_set();
        let store = CaptureStore::new(&set);
        let spec = store.get(SideChannel::Mag, Transform::Spectrogram).unwrap();
        // The spectrogram generation populated the raw slot too.
        let stats = store.stats();
        assert_eq!(stats.misses, 2, "spectrogram + its raw dependency");
        let raw = store.get(SideChannel::Mag, Transform::Raw).unwrap();
        assert_eq!(store.stats().hits, 1);
        assert_eq!(spec.len(), raw.len());
        for (s, r) in spec.iter().zip(raw.iter()) {
            assert_eq!(s.role, r.role);
            assert_ne!(s.signal.fs(), r.signal.fs());
        }
    }

    #[test]
    fn matches_direct_capture() {
        let set = tiny_set();
        let store = CaptureStore::new(&set);
        let stored = store.get(SideChannel::Acc, Transform::Raw).unwrap();
        let direct = set.capture(SideChannel::Acc, Transform::Raw).unwrap();
        assert_eq!(stored.len(), direct.len());
        for (s, d) in stored.iter().zip(direct.iter()) {
            assert_eq!(s.signal, d.signal);
            assert_eq!(s.layer_times, d.layer_times);
        }
    }

    #[test]
    fn prewarm_makes_later_requests_hits() {
        let set = tiny_set();
        let store = CaptureStore::with_threads(&set, 2);
        store
            .prewarm(&[
                (SideChannel::Mag, Transform::Spectrogram),
                (SideChannel::Mag, Transform::Raw),
                (SideChannel::Mag, Transform::Raw), // duplicate
                (SideChannel::Acc, Transform::Raw),
            ])
            .unwrap();
        // Raw-before-spectrogram ordering: 3 distinct keys, 3 misses (the
        // spectrogram's raw dependency was already warmed), 1 hit from the
        // deduplicated raw request feeding the spectrogram derivation.
        let warm = store.stats();
        assert_eq!(warm.misses, 3);
        assert_eq!(warm.hits, 1);
        // Every post-warm request is a pure hit.
        store.get(SideChannel::Mag, Transform::Spectrogram).unwrap();
        store.get(SideChannel::Acc, Transform::Raw).unwrap();
        let after = store.stats();
        assert_eq!(after.misses, 3);
        assert_eq!(after.hits, 3);
    }

    #[test]
    fn concurrent_requests_generate_once() {
        let set = tiny_set();
        let store = CaptureStore::new(&set);
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| store.get(SideChannel::Aud, Transform::Spectrogram).unwrap());
            }
        })
        .unwrap();
        // 4 threads raced: exactly 2 generations (raw + spectrogram).
        assert_eq!(store.stats().misses, 2);
        assert_eq!(store.stats().hits + store.stats().misses, 5);
    }
}
