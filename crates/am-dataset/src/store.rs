//! Memoized capture artifacts for one experiment.
//!
//! The evaluation grid asks for the same (channel × transform) capture
//! set once per detector; without memoization every cell re-simulates the
//! DAQ (and the STFT on top of it). [`CaptureStore`] generates each
//! artifact exactly once per key behind a per-slot `parking_lot` mutex:
//! the first requester generates while holding only its own slot's lock,
//! concurrent requesters of the *same* key block until it is ready, and
//! requests for *different* keys proceed in parallel. Spectrogram slots
//! are derived from the raw slot of the same channel, so the underlying
//! DAQ simulation also runs at most once per channel.
//!
//! Captures are handed out as `Arc`s, so splits built over the store are
//! cheap views: cloning a capture set is a pointer bump, not a signal
//! copy.

use crate::error::DatasetError;
use crate::generate::{parallel_map_with_threads, Capture, TrajectorySet, Transform};
use crate::slots::KeyedSlots;
use am_dsp::stft::log_spectrogram;
use am_sensors::channel::SideChannel;
use std::sync::Arc;

/// A memoized capture set: one `Arc<Capture>` per run, reference first.
pub type SharedCaptures = Arc<Vec<Arc<Capture>>>;

/// Cache counters of a [`CaptureStore`] — the capture-flavoured name for
/// the generic [`SlotStats`](crate::slots::SlotStats).
pub type CaptureStats = crate::slots::SlotStats;

/// Lazily generated, memoized (channel × transform) capture sets over one
/// [`TrajectorySet`].
pub struct CaptureStore<'a> {
    set: &'a TrajectorySet,
    /// Worker count for the per-run fan-out *inside* one generation.
    threads: usize,
    slots: KeyedSlots<(SideChannel, Transform), SharedCaptures>,
}

impl<'a> CaptureStore<'a> {
    /// Creates an empty store over a trajectory set; generation fans out
    /// across all available cores.
    pub fn new(set: &'a TrajectorySet) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::with_threads(set, threads)
    }

    /// [`CaptureStore::new`] with an explicit worker count for generation.
    /// The evaluation grid passes its own thread budget here so capture
    /// generation parallelizes *within* a capture set instead of
    /// oversubscribing the machine from inside already-parallel cells.
    pub fn with_threads(set: &'a TrajectorySet, threads: usize) -> Self {
        let keys = SideChannel::all().into_iter().flat_map(|channel| {
            [Transform::Raw, Transform::Spectrogram]
                .into_iter()
                .map(move |transform| (channel, transform))
        });
        CaptureStore {
            set,
            threads: threads.max(1),
            slots: KeyedSlots::new("capture", keys),
        }
    }

    /// The underlying trajectory set.
    pub fn set(&self) -> &TrajectorySet {
        self.set
    }

    /// Returns the capture set for a key, generating it on first request.
    ///
    /// # Errors
    ///
    /// Propagates capture and STFT failures. A failed generation is not
    /// cached; the next request retries.
    pub fn get(
        &self,
        channel: SideChannel,
        transform: Transform,
    ) -> Result<SharedCaptures, DatasetError> {
        self.slots
            .get_or_insert_with(&(channel, transform), || match transform {
                Transform::Raw => Ok(Arc::new(
                    self.set
                        .capture_channel_with_threads(channel, self.threads)?
                        .into_iter()
                        .map(Arc::new)
                        .collect(),
                )),
                Transform::Spectrogram => {
                    // Derive from the raw slot so the DAQ simulation runs
                    // at most once per channel. Different mutex, no lock
                    // cycle.
                    let raw = self.get(channel, Transform::Raw)?;
                    let stft = self.set.spec.profile.spectrogram(channel);
                    let specs: Vec<Result<Arc<Capture>, DatasetError>> =
                        parallel_map_with_threads(&raw, self.threads, |(_, capture)| {
                            let spec = log_spectrogram(&capture.signal, &stft)?;
                            Ok(Arc::new(Capture {
                                role: capture.role.clone(),
                                signal: spec,
                                layer_times: capture.layer_times.clone(),
                            }))
                        });
                    Ok(Arc::new(specs.into_iter().collect::<Result<Vec<_>, _>>()?))
                }
            })
    }

    /// Returns the capture set for a key only if it was already generated
    /// (by [`CaptureStore::get`] or [`CaptureStore::prewarm`]) — never
    /// generates. Stage bodies that must not nest generation parallelism
    /// (the grid engine's fit and judge stages run *inside* a worker pool)
    /// use this so a missed pre-warm is a loud invariant violation at the
    /// call site instead of a silent single-threaded generation stall.
    pub fn cached(&self, channel: SideChannel, transform: Transform) -> Option<SharedCaptures> {
        self.slots.try_get(&(channel, transform))
    }

    /// Generates every distinct key up front, one key at a time, with the
    /// per-run fan-out parallelized across this store's thread budget.
    ///
    /// This is the contention-free alternative to letting grid workers
    /// fault captures in on demand: on-demand faulting makes the first
    /// requester generate single-threadedly while every other worker
    /// wanting the same key blocks on its slot lock. After a pre-warm,
    /// every worker request is an uncontended cache hit.
    ///
    /// Duplicate keys are deduplicated; each distinct key still counts as
    /// one miss in [`CaptureStore::stats`].
    ///
    /// # Errors
    ///
    /// Propagates capture and STFT failures.
    pub fn prewarm(&self, keys: &[(SideChannel, Transform)]) -> Result<(), DatasetError> {
        let mut seen: Vec<(SideChannel, Transform)> = Vec::new();
        for &key in keys {
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        // Raw keys first: spectrogram generation derives from the raw slot
        // of the same channel, so this orders dependencies before users.
        seen.sort_by_key(|&(_, t)| matches!(t, Transform::Spectrogram));
        for &(channel, transform) in &seen {
            self.get(channel, transform)?;
        }
        Ok(())
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> CaptureStats {
        self.slots.stats()
    }
}

impl std::fmt::Debug for CaptureStore<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaptureStore")
            .field("printer", &self.set.spec.printer)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ExperimentSpec, ProcessMix};
    use am_printer::config::PrinterModel;

    fn tiny_set() -> TrajectorySet {
        TrajectorySet::generate_with_mix(
            ExperimentSpec::small(PrinterModel::Um3),
            ProcessMix {
                train: 1,
                test_benign: 1,
                malicious_per_attack: 0,
            },
        )
        .unwrap()
    }

    #[test]
    fn memoizes_each_key_once() {
        let set = tiny_set();
        let store = CaptureStore::new(&set);
        let a = store.get(SideChannel::Mag, Transform::Raw).unwrap();
        let b = store.get(SideChannel::Mag, Transform::Raw).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second request must be a cache hit");
        let stats = store.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert!(stats.generation_seconds() > 0.0);
    }

    #[test]
    fn spectrogram_reuses_raw_capture() {
        let set = tiny_set();
        let store = CaptureStore::new(&set);
        let spec = store.get(SideChannel::Mag, Transform::Spectrogram).unwrap();
        // The spectrogram generation populated the raw slot too.
        let stats = store.stats();
        assert_eq!(stats.misses, 2, "spectrogram + its raw dependency");
        let raw = store.get(SideChannel::Mag, Transform::Raw).unwrap();
        assert_eq!(store.stats().hits, 1);
        assert_eq!(spec.len(), raw.len());
        for (s, r) in spec.iter().zip(raw.iter()) {
            assert_eq!(s.role, r.role);
            assert_ne!(s.signal.fs(), r.signal.fs());
        }
    }

    #[test]
    fn matches_direct_capture() {
        let set = tiny_set();
        let store = CaptureStore::new(&set);
        let stored = store.get(SideChannel::Acc, Transform::Raw).unwrap();
        let direct = set.capture(SideChannel::Acc, Transform::Raw).unwrap();
        assert_eq!(stored.len(), direct.len());
        for (s, d) in stored.iter().zip(direct.iter()) {
            assert_eq!(s.signal, d.signal);
            assert_eq!(s.layer_times, d.layer_times);
        }
    }

    #[test]
    fn prewarm_makes_later_requests_hits() {
        let set = tiny_set();
        let store = CaptureStore::with_threads(&set, 2);
        store
            .prewarm(&[
                (SideChannel::Mag, Transform::Spectrogram),
                (SideChannel::Mag, Transform::Raw),
                (SideChannel::Mag, Transform::Raw), // duplicate
                (SideChannel::Acc, Transform::Raw),
            ])
            .unwrap();
        // Raw-before-spectrogram ordering: 3 distinct keys, 3 misses (the
        // spectrogram's raw dependency was already warmed), 1 hit from the
        // deduplicated raw request feeding the spectrogram derivation.
        let warm = store.stats();
        assert_eq!(warm.misses, 3);
        assert_eq!(warm.hits, 1);
        // Every post-warm request is a pure hit.
        store.get(SideChannel::Mag, Transform::Spectrogram).unwrap();
        store.get(SideChannel::Acc, Transform::Raw).unwrap();
        let after = store.stats();
        assert_eq!(after.misses, 3);
        assert_eq!(after.hits, 3);
    }

    #[test]
    fn cached_is_hit_only() {
        let set = tiny_set();
        let store = CaptureStore::with_threads(&set, 1);
        assert!(store.cached(SideChannel::Mag, Transform::Raw).is_none());
        assert_eq!(store.stats().misses, 0, "cached() must never generate");
        store
            .prewarm(&[(SideChannel::Mag, Transform::Raw)])
            .unwrap();
        let warm = store
            .cached(SideChannel::Mag, Transform::Raw)
            .expect("prewarmed key");
        let direct = store.get(SideChannel::Mag, Transform::Raw).unwrap();
        assert!(Arc::ptr_eq(&warm, &direct));
    }

    #[test]
    fn concurrent_requests_generate_once() {
        let set = tiny_set();
        let store = CaptureStore::new(&set);
        crossbeam::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| store.get(SideChannel::Aud, Transform::Spectrogram).unwrap());
            }
        })
        .unwrap();
        // 4 threads raced: exactly 2 generations (raw + spectrogram).
        assert_eq!(store.stats().misses, 2);
        assert_eq!(store.stats().hits + store.stats().misses, 5);
    }
}
