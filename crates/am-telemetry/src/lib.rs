//! Pipeline-wide telemetry for the NSYNC reproduction (DESIGN.md §10).
//!
//! A process-global registry of **counters**, **histograms**, and
//! **spans** that every crate in the hot path records into — DAQ capture,
//! capture-store lookups, sync kernels, grid-engine stages, and the
//! streaming monitor. The design goal is *provable inertness*:
//!
//! - **Disabled** (the default): every site costs one relaxed atomic
//!   load — no allocation, no locks, no `Instant::now`. Nothing observes
//!   signal values, so detection output is byte-identical either way.
//! - **Enabled**: counters and histograms are lock-free atomics;
//!   span events for the Chrome-trace exporter are buffered behind a
//!   short mutex push only when trace collection is on.
//!
//! Enablement comes from the `AM_TELEMETRY` environment variable on
//! first use (`1`/anything truthy → metrics, `trace` → metrics + trace
//! events, unset/`0`/`false`/`off` → disabled) or programmatically via
//! [`set_enabled`] / [`set_tracing`].
//!
//! Two exporters:
//!
//! - [`json_summary`] — sorted, human-readable counter and span totals;
//! - [`chrome_trace_json`] / [`write_chrome_trace`] — Chrome trace-event
//!   format (load in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)).
//!
//! # Example
//!
//! ```
//! am_telemetry::set_tracing(true);
//! {
//!     let _guard = am_telemetry::span!("example.work");
//!     am_telemetry::count!("example.items", 3);
//! }
//! assert_eq!(am_telemetry::counter_value("example.items"), 3);
//! assert_eq!(am_telemetry::span_stats("example.work").count, 1);
//! assert!(am_telemetry::chrome_trace_json().contains("example.work"));
//! am_telemetry::set_enabled(false);
//! ```

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Number of power-of-two latency buckets per histogram (covers 1 ns to
/// ~584 years; bucket `i` holds durations in `[2^(i-1), 2^i)` ns).
const BUCKETS: usize = 64;

/// Hard cap on buffered trace events; overflow is counted, not stored.
const MAX_TRACE_EVENTS: usize = 1 << 20;

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;
const TRACE: u8 = 3;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// `true` if telemetry recording is on. The fast path — and the *entire*
/// per-site cost when disabled — is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    let s = STATE.load(Ordering::Relaxed);
    if s == UNINIT {
        return init_from_env() >= ON;
    }
    s >= ON
}

/// `true` if span trace-event collection (the Chrome exporter's input)
/// is on. Implies [`enabled`].
#[inline]
pub fn tracing_enabled() -> bool {
    let s = STATE.load(Ordering::Relaxed);
    if s == UNINIT {
        return init_from_env() == TRACE;
    }
    s == TRACE
}

/// Reads `AM_TELEMETRY` exactly once (unless a `set_*` call got there
/// first) and resolves the pending state.
fn init_from_env() -> u8 {
    let computed = match std::env::var("AM_TELEMETRY") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            if v.is_empty() || v == "0" || v == "false" || v == "off" {
                OFF
            } else if v == "trace" {
                TRACE
            } else {
                ON
            }
        }
        Err(_) => OFF,
    };
    match STATE.compare_exchange(UNINIT, computed, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => computed,
        Err(racing) => racing,
    }
}

/// Turns metric recording on or off. Disabling also stops trace
/// collection (already-buffered events are kept until [`reset`]).
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Turns span trace-event collection on or off. Enabling implies
/// [`set_enabled`]`(true)`; disabling keeps plain metrics on.
pub fn set_tracing(on: bool) {
    STATE.store(if on { TRACE } else { ON }, Ordering::Relaxed);
}

struct CounterInner {
    name: String,
    value: AtomicU64,
}

struct HistInner {
    name: String,
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistInner {
    fn new(name: String) -> Self {
        HistInner {
            name,
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        let bucket = (64 - nanos.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Upper bound (ns) of the smallest bucket prefix holding `q` of the
    /// recorded samples.
    fn quantile_bound_nanos(&self, q: f64) -> u64 {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0;
        }
        let target = (total as f64 * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64.checked_shl(i as u32).unwrap_or(u64::MAX);
            }
        }
        self.max_nanos.load(Ordering::Relaxed)
    }
}

struct TraceEvent {
    hist: Arc<HistInner>,
    tid: u32,
    start_nanos: u64,
    dur_nanos: u64,
}

#[derive(Default)]
struct TraceBuf {
    events: Vec<TraceEvent>,
    dropped: u64,
}

struct Registry {
    epoch: Instant,
    counters: Mutex<Vec<Arc<CounterInner>>>,
    hists: Mutex<Vec<Arc<HistInner>>>,
    trace: Mutex<TraceBuf>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        epoch: Instant::now(),
        counters: Mutex::new(Vec::new()),
        hists: Mutex::new(Vec::new()),
        trace: Mutex::new(TraceBuf::default()),
    })
}

/// Locks ignoring poisoning: telemetry must never compound a panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn thread_id() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(1);
    thread_local! {
        static TID: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Handle to a named monotonic counter. Cheap to clone; hot sites should
/// obtain it once (the [`count!`] macro caches per call site).
#[derive(Clone)]
pub struct Counter(Arc<CounterInner>);

impl Counter {
    /// Adds `n` when telemetry is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 when telemetry is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("name", &self.0.name)
            .field("value", &self.value())
            .finish()
    }
}

/// Handle to a named duration histogram (the backing store of spans).
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Records one duration when telemetry is enabled.
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        self.record_nanos(d.as_nanos() as u64);
    }

    /// Records one duration, in nanoseconds, when telemetry is enabled.
    #[inline]
    pub fn record_nanos(&self, nanos: u64) {
        if enabled() {
            self.0.record(nanos);
        }
    }

    /// Upper bound (ns) of the smallest log2-bucket prefix holding `q`
    /// (in `[0, 1]`) of the recorded samples — the approximation behind
    /// the `p95_us` column of [`json_summary`], exposed so live health
    /// views (e.g. a fleet snapshot's chunk-latency p95) can read it
    /// without parsing JSON. Returns 0 when nothing was recorded.
    pub fn quantile_bound_nanos(&self, q: f64) -> u64 {
        self.0.quantile_bound_nanos(q.clamp(0.0, 1.0))
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("name", &self.0.name)
            .finish()
    }
}

/// Interns a counter by name (same name → same underlying cell).
pub fn counter(name: &str) -> Counter {
    let mut counters = lock(&registry().counters);
    if let Some(c) = counters.iter().find(|c| c.name == name) {
        return Counter(Arc::clone(c));
    }
    let c = Arc::new(CounterInner {
        name: name.to_string(),
        value: AtomicU64::new(0),
    });
    counters.push(Arc::clone(&c));
    Counter(c)
}

/// Interns a histogram by name (same name → same underlying cells).
pub fn histogram(name: &str) -> Histogram {
    let mut hists = lock(&registry().hists);
    if let Some(h) = hists.iter().find(|h| h.name == name) {
        return Histogram(Arc::clone(h));
    }
    let h = Arc::new(HistInner::new(name.to_string()));
    hists.push(Arc::clone(&h));
    Histogram(h)
}

/// RAII span: measures from construction to drop, recording the duration
/// into the span's histogram and (when tracing) a Chrome trace event.
/// Inert — no clock read at all — when telemetry is disabled.
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    live: Option<(Arc<HistInner>, Instant)>,
}

impl SpanGuard {
    /// Starts a span over an interned histogram; the [`span!`] macro is
    /// the usual entry point.
    #[inline]
    pub fn start(hist: &Histogram) -> SpanGuard {
        if enabled() {
            SpanGuard {
                live: Some((Arc::clone(&hist.0), Instant::now())),
            }
        } else {
            SpanGuard::disabled()
        }
    }

    /// An inert guard (what disabled sites get).
    #[inline]
    pub fn disabled() -> SpanGuard {
        SpanGuard { live: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((hist, started)) = self.live.take() else {
            return;
        };
        let dur_nanos = started.elapsed().as_nanos() as u64;
        hist.record(dur_nanos);
        if tracing_enabled() {
            let reg = registry();
            let start_nanos = started.duration_since(reg.epoch).as_nanos() as u64;
            let mut trace = lock(&reg.trace);
            if trace.events.len() < MAX_TRACE_EVENTS {
                trace.events.push(TraceEvent {
                    hist,
                    tid: thread_id(),
                    start_nanos,
                    dur_nanos,
                });
            } else {
                trace.dropped += 1;
            }
        }
    }
}

/// Starts a span by name, interning on every call. Prefer [`span!`] in
/// hot code — it caches the interned handle per call site.
pub fn start_span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::disabled();
    }
    SpanGuard::start(&histogram(name))
}

/// Adds to a named counter, caching the interned handle per call site.
/// Disabled cost: one relaxed atomic load.
#[macro_export]
macro_rules! count {
    ($name:expr, $n:expr) => {{
        if $crate::enabled() {
            static __AM_TELEMETRY_SITE: ::std::sync::OnceLock<$crate::Counter> =
                ::std::sync::OnceLock::new();
            __AM_TELEMETRY_SITE
                .get_or_init(|| $crate::counter($name))
                .add($n as u64);
        }
    }};
    ($name:expr) => {
        $crate::count!($name, 1u64)
    };
}

/// Opens a [`SpanGuard`] measuring until end of scope, caching the
/// interned handle per call site. Disabled cost: one relaxed atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        if $crate::enabled() {
            static __AM_TELEMETRY_SITE: ::std::sync::OnceLock<$crate::Histogram> =
                ::std::sync::OnceLock::new();
            $crate::SpanGuard::start(__AM_TELEMETRY_SITE.get_or_init(|| $crate::histogram($name)))
        } else {
            $crate::SpanGuard::disabled()
        }
    }};
}

/// Aggregate statistics of one span/histogram name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Recorded durations.
    pub count: u64,
    /// Sum of recorded durations (ns).
    pub total_nanos: u64,
    /// Largest recorded duration (ns).
    pub max_nanos: u64,
}

impl SpanStats {
    /// Sum of recorded durations in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_nanos as f64 / 1e9
    }
}

/// Current value of a counter (0 if never registered).
pub fn counter_value(name: &str) -> u64 {
    lock(&registry().counters)
        .iter()
        .find(|c| c.name == name)
        .map_or(0, |c| c.value.load(Ordering::Relaxed))
}

/// Approximate quantile upper bound (ns) of a histogram by name — see
/// [`Histogram::quantile_bound_nanos`]. Returns 0 if the histogram was
/// never registered or never recorded.
pub fn histogram_quantile_nanos(name: &str, q: f64) -> u64 {
    lock(&registry().hists)
        .iter()
        .find(|h| h.name == name)
        .map_or(0, |h| h.quantile_bound_nanos(q.clamp(0.0, 1.0)))
}

/// Aggregate stats of a span/histogram (zeros if never registered).
pub fn span_stats(name: &str) -> SpanStats {
    lock(&registry().hists)
        .iter()
        .find(|h| h.name == name)
        .map_or_else(SpanStats::default, |h| SpanStats {
            count: h.count.load(Ordering::Relaxed),
            total_nanos: h.sum_nanos.load(Ordering::Relaxed),
            max_nanos: h.max_nanos.load(Ordering::Relaxed),
        })
}

/// Number of buffered trace events.
pub fn trace_event_count() -> usize {
    lock(&registry().trace).events.len()
}

/// Zeroes every counter and histogram and clears the trace buffer.
/// Registrations (and handles already held by call sites) stay valid.
pub fn reset() {
    let reg = registry();
    for c in lock(&reg.counters).iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in lock(&reg.hists).iter() {
        h.count.store(0, Ordering::Relaxed);
        h.sum_nanos.store(0, Ordering::Relaxed);
        h.max_nanos.store(0, Ordering::Relaxed);
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
    let mut trace = lock(&reg.trace);
    trace.events.clear();
    trace.dropped = 0;
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A sorted, human-readable JSON summary of every counter and span:
/// counts, totals, means, maxima, and an approximate p95.
pub fn json_summary() -> String {
    let reg = registry();
    let mut counters: Vec<(String, u64)> = lock(&reg.counters)
        .iter()
        .map(|c| (c.name.clone(), c.value.load(Ordering::Relaxed)))
        .collect();
    counters.sort();
    let mut spans: Vec<(String, SpanStats, u64)> = lock(&reg.hists)
        .iter()
        .map(|h| {
            (
                h.name.clone(),
                SpanStats {
                    count: h.count.load(Ordering::Relaxed),
                    total_nanos: h.sum_nanos.load(Ordering::Relaxed),
                    max_nanos: h.max_nanos.load(Ordering::Relaxed),
                },
                h.quantile_bound_nanos(0.95),
            )
        })
        .collect();
    spans.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, value)) in counters.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        out.push_str(&format!("{sep}\n    \"{}\": {value}", json_escape(name)));
    }
    out.push_str("\n  },\n  \"spans\": {");
    for (i, (name, s, p95)) in spans.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let mean_us = if s.count == 0 {
            0.0
        } else {
            s.total_nanos as f64 / s.count as f64 / 1e3
        };
        out.push_str(&format!(
            "{sep}\n    \"{}\": {{\"count\": {}, \"total_s\": {:.6}, \"mean_us\": {:.3}, \"max_us\": {:.3}, \"p95_us\": {:.3}}}",
            json_escape(name),
            s.count,
            s.total_seconds(),
            mean_us,
            s.max_nanos as f64 / 1e3,
            *p95 as f64 / 1e3,
        ));
    }
    let dropped = lock(&reg.trace).dropped;
    out.push_str(&format!(
        "\n  }},\n  \"trace_events\": {},\n  \"trace_events_dropped\": {}\n}}",
        trace_event_count(),
        dropped
    ));
    out
}

/// The buffered spans in Chrome trace-event format — load the string (or
/// the file written by [`write_chrome_trace`]) in `chrome://tracing` or
/// Perfetto. Events are complete (`"ph": "X"`) with microsecond
/// timestamps relative to process start.
pub fn chrome_trace_json() -> String {
    let reg = registry();
    let trace = lock(&reg.trace);
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in trace.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"name\":\"{}\",\"cat\":\"am\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            json_escape(&e.hist.name),
            e.tid,
            e.start_nanos as f64 / 1e3,
            e.dur_nanos as f64 / 1e3,
        ));
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Writes [`chrome_trace_json`] to a file.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_chrome_trace<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace_json())
}

/// CPU time consumed by the *calling thread*, as a monotone duration.
///
/// Wall-clock stopwatches lie about per-stage cost whenever workers
/// outnumber cores: a preempted thread's `Instant` keeps ticking, so an
/// 8-worker run on one core reports every stage ~8× more "CPU" than it
/// burned. Differences of this clock count only the nanoseconds the
/// scheduler actually ran the thread, so summed per-worker costs stay
/// comparable across thread counts (the grid engine's `*_cpu_seconds`
/// are built on it).
///
/// On Linux/x86_64 this reads `CLOCK_THREAD_CPUTIME_ID` via a raw
/// `clock_gettime` syscall (the workspace vendors all dependencies, so
/// there is no libc binding to call through). Elsewhere it falls back to
/// a process-wide monotonic wall clock — deltas are then wall time, the
/// pre-existing behaviour.
pub fn thread_cpu_time() -> std::time::Duration {
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        // clock_gettime(CLOCK_THREAD_CPUTIME_ID, &timespec)
        const SYS_CLOCK_GETTIME: i64 = 228;
        const CLOCK_THREAD_CPUTIME_ID: i64 = 3;
        let mut timespec = [0i64; 2]; // { tv_sec, tv_nsec }
        let ret: i64;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_CLOCK_GETTIME => ret,
                in("rdi") CLOCK_THREAD_CPUTIME_ID,
                in("rsi") timespec.as_mut_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        if ret == 0 {
            return std::time::Duration::new(timespec[0] as u64, timespec[1] as u32);
        }
        // An unlikely syscall failure falls through to the wall clock.
    }
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed()
}

/// One-stop handle to the global registry, re-exported through
/// `nsync::prelude` so operators wiring up an IDS can flip telemetry and
/// pull exports without importing this crate directly. All methods
/// delegate to the module-level functions.
#[derive(Debug, Clone, Copy, Default)]
pub struct Telemetry;

impl Telemetry {
    /// See [`enabled`].
    pub fn enabled(self) -> bool {
        enabled()
    }

    /// See [`set_enabled`].
    pub fn set_enabled(self, on: bool) {
        set_enabled(on);
    }

    /// See [`set_tracing`].
    pub fn set_tracing(self, on: bool) {
        set_tracing(on);
    }

    /// See [`json_summary`].
    pub fn json_summary(self) -> String {
        json_summary()
    }

    /// See [`chrome_trace_json`].
    pub fn chrome_trace_json(self) -> String {
        chrome_trace_json()
    }

    /// See [`write_chrome_trace`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_chrome_trace<P: AsRef<std::path::Path>>(self, path: P) -> std::io::Result<()> {
        write_chrome_trace(path)
    }

    /// See [`counter_value`].
    pub fn counter_value(self, name: &str) -> u64 {
        counter_value(name)
    }

    /// See [`span_stats`].
    pub fn span_stats(self, name: &str) -> SpanStats {
        span_stats(name)
    }

    /// See [`reset`].
    pub fn reset(self) {
        reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Telemetry state is process-global, so the unit tests run as one
    /// sequence (Rust's test harness would otherwise interleave them).
    #[test]
    fn global_registry_end_to_end() {
        disabled_sites_record_nothing();
        counters_and_histograms_accumulate();
        spans_nest_and_trace();
        exporters_render_valid_json();
        reset_zeroes_but_keeps_handles();
        concurrent_recording_is_consistent();
        set_enabled(false);
    }

    fn disabled_sites_record_nothing() {
        set_enabled(false);
        count!("test.disabled", 5);
        {
            let _g = span!("test.disabled_span");
        }
        let c = counter("test.disabled");
        c.add(7);
        assert_eq!(counter_value("test.disabled"), 0);
        assert_eq!(span_stats("test.disabled_span"), SpanStats::default());
    }

    fn counters_and_histograms_accumulate() {
        set_enabled(true);
        count!("test.counter", 2);
        count!("test.counter");
        assert_eq!(counter_value("test.counter"), 3);
        // Same name from two handles → one cell.
        let a = counter("test.shared");
        let b = counter("test.shared");
        a.incr();
        b.incr();
        assert_eq!(counter_value("test.shared"), 2);
        let h = histogram("test.hist");
        h.record_nanos(1_000);
        h.record_nanos(3_000);
        let s = span_stats("test.hist");
        assert_eq!(s.count, 2);
        assert_eq!(s.total_nanos, 4_000);
        assert_eq!(s.max_nanos, 3_000);
        assert_eq!(h.count(), 2);
        // Log2-bucket quantile bounds: 1 000 ns lands in [512, 1024),
        // 3 000 ns in [2 048, 4 096).
        assert_eq!(h.quantile_bound_nanos(0.5), 1 << 10);
        assert_eq!(histogram_quantile_nanos("test.hist", 1.0), 1 << 12);
        assert_eq!(histogram_quantile_nanos("test.no_such_hist", 0.95), 0);
    }

    fn spans_nest_and_trace() {
        set_tracing(true);
        let before = trace_event_count();
        {
            let _outer = span!("test.outer");
            for _ in 0..3 {
                let _inner = span!("test.inner");
                std::hint::black_box(());
            }
        }
        assert_eq!(trace_event_count(), before + 4);
        let outer = span_stats("test.outer");
        let inner = span_stats("test.inner");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        // Nested children cannot exceed their enclosing span.
        assert!(inner.total_nanos <= outer.total_nanos);
        set_tracing(false);
    }

    fn exporters_render_valid_json() {
        let summary = json_summary();
        assert!(summary.contains("\"test.counter\": 3"), "{summary}");
        assert!(summary.contains("\"test.outer\""), "{summary}");
        let trace = chrome_trace_json();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"test.inner\""));
        assert!(trace.trim_end().ends_with('}'));
        // Balanced braces — cheap structural sanity for both exporters.
        for doc in [&summary, &trace] {
            let open = doc.matches('{').count();
            let close = doc.matches('}').count();
            assert_eq!(open, close, "unbalanced JSON: {doc}");
        }
    }

    fn reset_zeroes_but_keeps_handles() {
        let c = counter("test.counter");
        reset();
        assert_eq!(counter_value("test.counter"), 0);
        assert_eq!(span_stats("test.outer"), SpanStats::default());
        assert_eq!(trace_event_count(), 0);
        c.incr();
        assert_eq!(counter_value("test.counter"), 1);
    }

    fn concurrent_recording_is_consistent() {
        reset();
        set_tracing(true);
        let threads = 8;
        let per_thread = 200;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    for _ in 0..per_thread {
                        let _g = span!("test.mt_span");
                        count!("test.mt", 1);
                    }
                });
            }
        });
        assert_eq!(counter_value("test.mt"), (threads * per_thread) as u64);
        let s = span_stats("test.mt_span");
        assert_eq!(s.count, (threads * per_thread) as u64);
        assert!(s.max_nanos <= s.total_nanos);
        assert_eq!(trace_event_count(), threads * per_thread);
        set_tracing(false);
    }

    #[test]
    fn telemetry_handle_delegates() {
        let t = Telemetry;
        // Only query paths here (the end-to-end test owns global state).
        let _ = t.enabled();
        assert_eq!(t.counter_value("test.never_registered"), 0);
        assert_eq!(t.span_stats("test.never_registered"), SpanStats::default());
        assert!(t.json_summary().contains("counters"));
    }

    #[test]
    fn thread_cpu_time_is_monotone_and_advances_under_load() {
        let a = thread_cpu_time();
        // Burn CPU (not sleep — a sleeping thread accrues no CPU time and
        // the whole point of this clock is to not count such gaps).
        let mut acc = 0u64;
        let spin0 = Instant::now();
        while spin0.elapsed() < std::time::Duration::from_millis(20) {
            for k in 0..10_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
        }
        let b = thread_cpu_time();
        assert!(b >= a, "thread CPU clock went backwards: {a:?} -> {b:?}");
        assert!(
            b - a >= std::time::Duration::from_millis(1),
            "20ms of spinning advanced the CPU clock by only {:?}",
            b - a
        );
    }
}
