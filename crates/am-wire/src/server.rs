//! The fleet service edge: TCP and UDP listeners decoding AMW1 frames
//! into the shard queues of an [`am_fleet::Fleet`].
//!
//! ```text
//!   DAQ gateways ──TCP (framed byte stream)──┐
//!                                            ├─► decode ─► rate limit ─► Fleet::send
//!   DAQ gateways ──UDP (one frame/datagram)──┘        │
//!                                                     └─► per-source drop/reject counters
//! ```
//!
//! Edge policy, all bounded (DESIGN.md §12.2):
//!
//! - **Per-source token-bucket rate limiting** ([`crate::limit`]) —
//!   over-rate frames are shed and counted, never queued.
//! - **Frame budget** — a length prefix larger than
//!   [`EdgeConfig::max_frame_bytes`] is rejected *before* allocation.
//! - **Connection cap** — TCP connections beyond
//!   [`EdgeConfig::max_connections`] are refused at accept.
//! - **Idle timeout** — a TCP connection that stops sending frames for
//!   [`EdgeConfig::idle_timeout`] is closed (sockets leak otherwise:
//!   a farm gateway reboot would strand its old connection forever).
//!
//! Determinism contract: the edge only ever *drops whole frames* (shed,
//! malformed, or over-rate) or *delivers them unmodified, in per-source
//! arrival order*. Byte-replaying a recorded wire log therefore
//! reproduces the exact verdict stream of in-process ingestion —
//! `tests/wire_replay.rs` pins this end to end over a real loopback
//! socket.

use crate::frame::{decode_datagram, FrameDecoder, WireError, WireFrame};
use crate::limit::SourceLimiter;
use am_fleet::{Fleet, FleetReport, FleetSnapshot, PrinterId, RejectReason};
use am_fleet::{ReloadPlan, ReloadReport, SpecRegistry};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service-edge configuration.
///
/// `#[non_exhaustive]`: construct with [`Default`] and the `with_*`
/// methods, matching the house style.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EdgeConfig {
    /// TCP bind address (`None` disables the TCP listener). Defaults to
    /// an ephemeral loopback port; bind `0.0.0.0:<port>` to serve a farm.
    pub tcp_bind: Option<String>,
    /// UDP bind address (`None` disables the UDP listener).
    pub udp_bind: Option<String>,
    /// Hard ceiling on one frame's encoded size (header + payload +
    /// CRC). Checked against the length prefix before any allocation.
    pub max_frame_bytes: usize,
    /// Concurrent TCP connections accepted; further connects are
    /// refused (and counted) until one closes.
    pub max_connections: usize,
    /// A TCP connection producing no frames for this long is closed.
    pub idle_timeout: Duration,
    /// Token-bucket refill rate per source, frames/second.
    pub rate_limit: f64,
    /// Token-bucket depth per source, frames.
    pub rate_burst: f64,
    /// Sources tracked by the limiter before stale-bucket eviction.
    pub max_sources: usize,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            tcp_bind: Some("127.0.0.1:0".to_string()),
            udp_bind: Some("127.0.0.1:0".to_string()),
            max_frame_bytes: 1 << 20,
            max_connections: 64,
            idle_timeout: Duration::from_secs(30),
            rate_limit: 10_000.0,
            rate_burst: 20_000.0,
            max_sources: 1024,
        }
    }
}

impl EdgeConfig {
    /// Overrides (or disables, with `None`) the TCP bind address.
    #[must_use]
    pub fn with_tcp_bind(mut self, addr: Option<&str>) -> Self {
        self.tcp_bind = addr.map(str::to_string);
        self
    }

    /// Overrides (or disables, with `None`) the UDP bind address.
    #[must_use]
    pub fn with_udp_bind(mut self, addr: Option<&str>) -> Self {
        self.udp_bind = addr.map(str::to_string);
        self
    }

    /// Overrides the per-frame size budget.
    #[must_use]
    pub fn with_max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Overrides the concurrent TCP connection cap.
    #[must_use]
    pub fn with_max_connections(mut self, connections: usize) -> Self {
        self.max_connections = connections;
        self
    }

    /// Overrides the idle timeout.
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// Overrides the per-source rate limit (frames/second) and burst.
    #[must_use]
    pub fn with_rate_limit(mut self, rate: f64, burst: f64) -> Self {
        self.rate_limit = rate;
        self.rate_burst = burst;
        self
    }

    /// Overrides the limiter's tracked-source cap.
    #[must_use]
    pub fn with_max_sources(mut self, sources: usize) -> Self {
        self.max_sources = sources;
        self
    }
}

/// Frames rejected at the edge, by cause. Mirrors the
/// [`WireError`] taxonomy plus the fleet's delivery rejections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectCounts {
    /// Stream ended (or datagram arrived) mid-frame.
    pub truncated: u64,
    /// Not AMW1 framing.
    pub bad_magic: u64,
    /// Unsupported wire version.
    pub bad_version: u64,
    /// CRC trailer mismatch.
    pub bad_crc: u64,
    /// Length prefix beyond the frame budget.
    pub oversized: u64,
    /// Framing fine, payload invalid.
    pub bad_payload: u64,
    /// Frame addressed an unregistered printer.
    pub unknown_printer: u64,
    /// Shard queue full under [`am_fleet::IngestPolicy::Reject`].
    pub queue_full: u64,
    /// Target shard no longer accepting commands.
    pub shard_down: u64,
}

impl RejectCounts {
    /// Total rejected frames across every cause.
    pub fn total(&self) -> u64 {
        self.truncated
            + self.bad_magic
            + self.bad_version
            + self.bad_crc
            + self.oversized
            + self.bad_payload
            + self.unknown_printer
            + self.queue_full
            + self.shard_down
    }

    fn bump(&mut self, error: &WireError) {
        match error {
            WireError::Truncated { .. } => self.truncated += 1,
            WireError::BadMagic { .. } => self.bad_magic += 1,
            WireError::BadVersion { .. } => self.bad_version += 1,
            WireError::BadCrc { .. } => self.bad_crc += 1,
            WireError::Oversized { .. } => self.oversized += 1,
            WireError::BadPayload { .. } => self.bad_payload += 1,
            WireError::UnknownPrinter { .. } => self.unknown_printer += 1,
        }
    }
}

/// Per-source edge counters (cumulative since the source's first frame).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Frames decoded and delivered to the fleet.
    pub frames_ok: u64,
    /// Bytes of those frames.
    pub bytes: u64,
    /// Frames shed by the token bucket.
    pub rate_limited: u64,
    /// Frames rejected by the decoder (any [`WireError`]).
    pub decode_rejected: u64,
    /// Decoded frames the fleet refused (unknown printer, full queue,
    /// dead shard).
    pub delivery_rejected: u64,
    /// Sequence-number discontinuities observed (counted, not fatal:
    /// UDP loss shows up here first).
    pub seq_gaps: u64,
}

/// Cross-thread edge counters.
struct WireShared {
    frames_ok: AtomicU64,
    bytes: AtomicU64,
    rate_limited: AtomicU64,
    seq_gaps: AtomicU64,
    connections_accepted: AtomicU64,
    connections_refused: AtomicU64,
    idle_disconnects: AtomicU64,
    rejects: Mutex<RejectCounts>,
    sources: Mutex<HashMap<SocketAddr, SourceStats>>,
    limiter: Mutex<SourceLimiter<SocketAddr>>,
}

impl WireShared {
    fn record_ok(&self, source: SocketAddr, bytes: usize) {
        self.frames_ok.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let mut sources = self.sources.lock();
        let s = sources.entry(source).or_default();
        s.frames_ok += 1;
        s.bytes += bytes as u64;
        am_telemetry::count!("wire.frames");
    }

    fn record_rate_limited(&self, source: SocketAddr) {
        self.rate_limited.fetch_add(1, Ordering::Relaxed);
        self.sources.lock().entry(source).or_default().rate_limited += 1;
        am_telemetry::count!("wire.rate_limited");
    }

    fn record_decode_error(&self, source: SocketAddr, error: &WireError) {
        self.rejects.lock().bump(error);
        self.sources
            .lock()
            .entry(source)
            .or_default()
            .decode_rejected += 1;
        am_telemetry::count!("wire.rejected");
    }

    fn record_delivery_reject(&self, source: SocketAddr, reason: &RejectReason) {
        {
            let mut rejects = self.rejects.lock();
            match reason {
                RejectReason::UnknownPrinter => rejects.unknown_printer += 1,
                RejectReason::QueueFull { .. } => rejects.queue_full += 1,
                RejectReason::ShardDown { .. } => rejects.shard_down += 1,
            }
        }
        self.sources
            .lock()
            .entry(source)
            .or_default()
            .delivery_rejected += 1;
        am_telemetry::count!("wire.rejected");
    }

    fn record_seq_gap(&self, source: SocketAddr) {
        self.seq_gaps.fetch_add(1, Ordering::Relaxed);
        self.sources.lock().entry(source).or_default().seq_gaps += 1;
        am_telemetry::count!("wire.seq_gaps");
    }
}

/// Point-in-time view of the edge (the wire-side complement of
/// [`FleetSnapshot`]).
#[derive(Debug, Clone)]
pub struct WireSnapshot {
    /// Frames decoded and delivered fleet-wide.
    pub frames_ok: u64,
    /// Bytes of those frames.
    pub bytes: u64,
    /// Frames shed by per-source rate limiting.
    pub rate_limited: u64,
    /// Sequence discontinuities observed.
    pub seq_gaps: u64,
    /// TCP connections accepted since spawn.
    pub connections_accepted: u64,
    /// TCP connections refused by the connection cap.
    pub connections_refused: u64,
    /// TCP connections closed by the idle timeout.
    pub idle_disconnects: u64,
    /// Rejected frames by cause.
    pub rejects: RejectCounts,
    /// Per-source counters, sorted by address for stable output.
    pub sources: Vec<(SocketAddr, SourceStats)>,
}

/// Snapshot of the whole service: wire edge plus fleet interior.
#[derive(Debug, Clone)]
pub struct EdgeSnapshot {
    /// The ingestion edge.
    pub wire: WireSnapshot,
    /// The fleet behind it.
    pub fleet: FleetSnapshot,
}

/// Final accounting returned by [`WireServer::finish`].
#[derive(Debug)]
pub struct EdgeReport {
    /// The fleet's shutdown report.
    pub fleet: FleetReport,
    /// The edge counters at shutdown.
    pub wire: WireSnapshot,
}

/// The running service edge: owns the [`Fleet`] (behind a lock so
/// hot-reload can mutate registration while listeners deliver) and the
/// listener threads.
pub struct WireServer {
    fleet: Arc<RwLock<Option<Fleet>>>,
    shared: Arc<WireShared>,
    stop: Arc<AtomicBool>,
    tcp_addr: Option<SocketAddr>,
    udp_addr: Option<SocketAddr>,
    threads: Vec<JoinHandle<()>>,
}

/// How often blocked-on-I/O listener threads re-check the stop flag.
const POLL: Duration = Duration::from_millis(25);

impl WireServer {
    /// Binds the configured listeners and takes ownership of the fleet.
    /// Clone the fleet's verdict receiver ([`Fleet::verdicts`]) *before*
    /// spawning if an [`crate::egress::AlertEgress`] worker should
    /// consume verdicts — or use [`WireServer::verdicts`] afterwards.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures.
    pub fn spawn(fleet: Fleet, cfg: EdgeConfig) -> std::io::Result<WireServer> {
        let shared = Arc::new(WireShared {
            frames_ok: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            seq_gaps: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
            connections_refused: AtomicU64::new(0),
            idle_disconnects: AtomicU64::new(0),
            rejects: Mutex::new(RejectCounts::default()),
            sources: Mutex::new(HashMap::new()),
            limiter: Mutex::new(SourceLimiter::new(
                cfg.rate_limit,
                cfg.rate_burst,
                cfg.max_sources,
            )),
        });
        let fleet = Arc::new(RwLock::new(Some(fleet)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        let tcp_addr = match &cfg.tcp_bind {
            Some(bind) => {
                let listener = TcpListener::bind(bind.as_str())?;
                listener.set_nonblocking(true)?;
                let local = listener.local_addr()?;
                let ctx = ListenerCtx {
                    fleet: Arc::clone(&fleet),
                    shared: Arc::clone(&shared),
                    stop: Arc::clone(&stop),
                    cfg: cfg.clone(),
                };
                threads.push(
                    std::thread::Builder::new()
                        .name("am-wire-tcp".to_string())
                        .spawn(move || run_tcp_listener(&listener, &ctx))
                        .expect("spawn tcp listener"),
                );
                Some(local)
            }
            None => None,
        };
        let udp_addr = match &cfg.udp_bind {
            Some(bind) => {
                let socket = UdpSocket::bind(bind.as_str())?;
                socket.set_read_timeout(Some(POLL))?;
                let local = socket.local_addr()?;
                let ctx = ListenerCtx {
                    fleet: Arc::clone(&fleet),
                    shared: Arc::clone(&shared),
                    stop: Arc::clone(&stop),
                    cfg: cfg.clone(),
                };
                threads.push(
                    std::thread::Builder::new()
                        .name("am-wire-udp".to_string())
                        .spawn(move || run_udp_listener(&socket, &ctx))
                        .expect("spawn udp listener"),
                );
                Some(local)
            }
            None => None,
        };

        Ok(WireServer {
            fleet,
            shared,
            stop,
            tcp_addr,
            udp_addr,
            threads,
        })
    }

    /// The bound TCP address, if the TCP listener is enabled.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound UDP address, if the UDP listener is enabled.
    pub fn udp_addr(&self) -> Option<SocketAddr> {
        self.udp_addr
    }

    /// A clone of the fleet's verdict fan-in receiver (see
    /// [`Fleet::verdicts`]).
    pub fn verdicts(&self) -> crossbeam::channel::Receiver<am_fleet::FleetVerdict> {
        self.with_fleet(Fleet::verdicts)
    }

    /// The verdict fan-in under its pre-verdict name.
    #[deprecated(since = "0.3.0", note = "use `WireServer::verdicts`")]
    pub fn alerts(&self) -> crossbeam::channel::Receiver<am_fleet::FleetVerdict> {
        self.verdicts()
    }

    /// Runs `f` against the fleet under the read lock (snapshotting,
    /// sending in-process traffic alongside the network edge, …).
    pub fn with_fleet<R>(&self, f: impl FnOnce(&Fleet) -> R) -> R {
        let guard = self.fleet.read();
        f(guard.as_ref().expect("fleet present until finish"))
    }

    /// Applies a hot-reload plan (add/drop/swap printers) under the
    /// write lock — listeners pause for the duration of the *enqueue*
    /// only; detector work happens on the shard threads, so in-flight
    /// verdict streams are unaffected (see [`am_fleet::ReloadPlan`]).
    pub fn reload(&self, plan: &ReloadPlan, registry: &SpecRegistry) -> ReloadReport {
        let mut guard = self.fleet.write();
        guard
            .as_mut()
            .expect("fleet present until finish")
            .apply(plan, registry)
    }

    /// Point-in-time snapshot of edge and fleet.
    pub fn snapshot(&self) -> EdgeSnapshot {
        EdgeSnapshot {
            wire: self.wire_snapshot(),
            fleet: self.with_fleet(Fleet::snapshot),
        }
    }

    fn wire_snapshot(&self) -> WireSnapshot {
        let mut sources: Vec<(SocketAddr, SourceStats)> = self
            .shared
            .sources
            .lock()
            .iter()
            .map(|(a, s)| (*a, *s))
            .collect();
        sources.sort_by_key(|(a, _)| a.to_string());
        WireSnapshot {
            frames_ok: self.shared.frames_ok.load(Ordering::Relaxed),
            bytes: self.shared.bytes.load(Ordering::Relaxed),
            rate_limited: self.shared.rate_limited.load(Ordering::Relaxed),
            seq_gaps: self.shared.seq_gaps.load(Ordering::Relaxed),
            connections_accepted: self.shared.connections_accepted.load(Ordering::Relaxed),
            connections_refused: self.shared.connections_refused.load(Ordering::Relaxed),
            idle_disconnects: self.shared.idle_disconnects.load(Ordering::Relaxed),
            rejects: *self.shared.rejects.lock(),
            sources,
        }
    }

    /// Stops the listeners, waits for every connection handler to wind
    /// down, then shuts the fleet down and returns both reports.
    ///
    /// # Errors
    ///
    /// Propagates [`Fleet::finish`] failures.
    pub fn finish(mut self) -> Result<EdgeReport, am_fleet::FleetError> {
        self.stop.store(true, Ordering::SeqCst);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        let wire = self.wire_snapshot();
        let fleet = self
            .fleet
            .write()
            .take()
            .expect("fleet present until finish")
            .finish()?;
        Ok(EdgeReport { fleet, wire })
    }
}

/// Everything a listener thread needs.
struct ListenerCtx {
    fleet: Arc<RwLock<Option<Fleet>>>,
    shared: Arc<WireShared>,
    stop: Arc<AtomicBool>,
    cfg: EdgeConfig,
}

impl ListenerCtx {
    /// Rate-limit, sequence-check, and deliver one decoded frame.
    fn deliver(
        &self,
        source: SocketAddr,
        frame: WireFrame,
        encoded_len: usize,
        seq: &mut SeqTracker,
    ) {
        if !self.shared.limiter.lock().admit(&source, Instant::now()) {
            self.shared.record_rate_limited(source);
            return;
        }
        if !seq.observe(frame.printer, frame.seq) {
            self.shared.record_seq_gap(source);
        }
        let guard = self.fleet.read();
        let fleet = guard.as_ref().expect("fleet present until finish");
        // The frame's side-channel tag routes to the printer's fused
        // lane (tags wrap modulo the lane count, so single-lane printers
        // accept any tag).
        match fleet.send_lane(frame.printer, frame.channel, frame.chunk) {
            Ok(()) => {
                drop(guard);
                self.shared.record_ok(source, encoded_len);
            }
            Err(rejected) => {
                drop(guard);
                self.shared.record_delivery_reject(source, &rejected.reason);
            }
        }
    }
}

/// Per-connection (or per-UDP-thread) sequence bookkeeping: one counter
/// per printer, gap = anything other than `last + 1`.
#[derive(Default)]
struct SeqTracker {
    last: HashMap<PrinterId, u64>,
}

impl SeqTracker {
    /// Records `seq` for `printer`; `false` on a discontinuity.
    fn observe(&mut self, printer: PrinterId, seq: u64) -> bool {
        match self.last.insert(printer, seq) {
            None => true,
            Some(prev) => seq == prev.wrapping_add(1),
        }
    }
}

fn run_tcp_listener(listener: &TcpListener, ctx: &ListenerCtx) {
    let active = Arc::new(AtomicUsize::new(0));
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !ctx.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                if active.load(Ordering::SeqCst) >= ctx.cfg.max_connections.max(1) {
                    ctx.shared
                        .connections_refused
                        .fetch_add(1, Ordering::Relaxed);
                    am_telemetry::count!("wire.connections_refused");
                    drop(stream);
                    continue;
                }
                ctx.shared
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                am_telemetry::count!("wire.connections");
                active.fetch_add(1, Ordering::SeqCst);
                let conn_ctx = ListenerCtx {
                    fleet: Arc::clone(&ctx.fleet),
                    shared: Arc::clone(&ctx.shared),
                    stop: Arc::clone(&ctx.stop),
                    cfg: ctx.cfg.clone(),
                };
                let conn_active = Arc::clone(&active);
                handlers.push(
                    std::thread::Builder::new()
                        .name(format!("am-wire-conn-{peer}"))
                        .spawn(move || {
                            run_tcp_connection(stream, peer, &conn_ctx);
                            conn_active.fetch_sub(1, Ordering::SeqCst);
                        })
                        .expect("spawn connection handler"),
                );
                // Reap finished handlers so a long-lived edge does not
                // accumulate joinable threads.
                handlers.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

fn run_tcp_connection(mut stream: TcpStream, peer: SocketAddr, ctx: &ListenerCtx) {
    // Short read timeout so both the stop flag and the idle clock are
    // polled; idleness is measured from the last *byte*, not per read.
    let _ = stream.set_read_timeout(Some(POLL));
    let mut decoder = FrameDecoder::new(ctx.cfg.max_frame_bytes);
    let mut seq = SeqTracker::default();
    let mut buf = vec![0u8; 64 * 1024];
    let mut last_activity = Instant::now();
    loop {
        if ctx.stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: anything still buffered was a truncated
                // frame.
                if let Err(e) = decoder.finish() {
                    ctx.shared.record_decode_error(peer, &e);
                }
                return;
            }
            Ok(n) => {
                last_activity = Instant::now();
                decoder.extend(&buf[..n]);
                while let Some(result) = decoder.next_frame() {
                    match result {
                        Ok(frame) => {
                            let len = frame.encoded_len();
                            ctx.deliver(peer, frame, len, &mut seq);
                        }
                        Err(e) => {
                            ctx.shared.record_decode_error(peer, &e);
                            if e.stream_fatal() {
                                // The byte stream has desynced; nothing
                                // after this point can be trusted.
                                return;
                            }
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_activity.elapsed() >= ctx.cfg.idle_timeout {
                    ctx.shared.idle_disconnects.fetch_add(1, Ordering::Relaxed);
                    am_telemetry::count!("wire.idle_disconnects");
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn run_udp_listener(socket: &UdpSocket, ctx: &ListenerCtx) {
    // One datagram = one frame; sequence gaps across datagrams of one
    // source are counted via the shared tracker below.
    let mut seq_by_source: HashMap<SocketAddr, SeqTracker> = HashMap::new();
    let mut buf = vec![0u8; ctx.cfg.max_frame_bytes.clamp(2048, 64 * 1024)];
    while !ctx.stop.load(Ordering::SeqCst) {
        match socket.recv_from(&mut buf) {
            Ok((n, peer)) => match decode_datagram(&buf[..n], ctx.cfg.max_frame_bytes) {
                Ok(frame) => {
                    let seq = seq_by_source.entry(peer).or_default();
                    ctx.deliver(peer, frame, n, seq);
                }
                Err(e) => ctx.shared.record_decode_error(peer, &e),
            },
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => std::thread::sleep(POLL),
        }
    }
}
