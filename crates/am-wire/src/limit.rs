//! Per-source token-bucket rate limiting for the ingestion edge.
//!
//! One bucket per source address: a well-behaved DAQ gateway streaming
//! at its printers' aggregate sample rate never notices the limiter,
//! while a runaway (or hostile) source is clamped to `rate + burst`
//! frames without affecting any other source. Time is injected
//! explicitly so tests are deterministic and the hot path never calls
//! `Instant::now` twice.

use std::collections::HashMap;
use std::hash::Hash;
use std::time::{Duration, Instant};

/// A classic token bucket: `rate` tokens/second refill, `burst` bucket
/// depth, one token per frame.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: f64,
    burst: f64,
    rate: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket refilling at `rate` tokens/second with `burst`
    /// capacity (both clamped to a sane floor).
    pub fn new(rate: f64, burst: f64, now: Instant) -> TokenBucket {
        let burst = burst.max(1.0);
        TokenBucket {
            tokens: burst,
            burst,
            rate: rate.max(f64::MIN_POSITIVE),
            last: now,
        }
    }

    /// Takes one token if available. `false` means the caller must shed
    /// this frame.
    pub fn try_take(&mut self, now: Instant) -> bool {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Seconds since this bucket was last touched.
    pub fn idle(&self, now: Instant) -> Duration {
        now.saturating_duration_since(self.last)
    }
}

/// A keyed family of token buckets, one per traffic source, with
/// bounded memory: stale buckets are evicted once the table exceeds
/// `max_sources` (a full bucket is recreated on the source's next
/// frame, which only ever errs in the source's favour).
#[derive(Debug)]
pub struct SourceLimiter<K: Eq + Hash + Clone> {
    rate: f64,
    burst: f64,
    max_sources: usize,
    buckets: HashMap<K, TokenBucket>,
}

impl<K: Eq + Hash + Clone> SourceLimiter<K> {
    /// A limiter admitting `rate` frames/second (burst `burst`) per
    /// source, tracking at most `max_sources` sources.
    pub fn new(rate: f64, burst: f64, max_sources: usize) -> SourceLimiter<K> {
        SourceLimiter {
            rate,
            burst,
            max_sources: max_sources.max(1),
            buckets: HashMap::new(),
        }
    }

    /// Whether `source` may send one frame now.
    pub fn admit(&mut self, source: &K, now: Instant) -> bool {
        if !self.buckets.contains_key(source) && self.buckets.len() >= self.max_sources {
            self.evict_stalest(now);
        }
        self.buckets
            .entry(source.clone())
            .or_insert_with(|| TokenBucket::new(self.rate, self.burst, now))
            .try_take(now)
    }

    /// Sources currently tracked.
    pub fn sources(&self) -> usize {
        self.buckets.len()
    }

    fn evict_stalest(&mut self, now: Instant) {
        if let Some(key) = self
            .buckets
            .iter()
            .max_by(|a, b| {
                a.1.idle(now)
                    .cmp(&b.1.idle(now))
                    .then_with(|| a.1.last.cmp(&b.1.last))
            })
            .map(|(k, _)| k.clone())
        {
            self.buckets.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_admits_burst_then_clamps() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(10.0, 5.0, t0);
        for _ in 0..5 {
            assert!(b.try_take(t0));
        }
        assert!(!b.try_take(t0), "burst exhausted");
        // 100 ms at 10/s refills one token.
        assert!(b.try_take(t0 + Duration::from_millis(100)));
        assert!(!b.try_take(t0 + Duration::from_millis(100)));
    }

    #[test]
    fn sources_are_independent_and_bounded() {
        let t0 = Instant::now();
        let mut limiter: SourceLimiter<u32> = SourceLimiter::new(1.0, 1.0, 2);
        assert!(limiter.admit(&1, t0));
        assert!(!limiter.admit(&1, t0), "source 1 clamped");
        assert!(limiter.admit(&2, t0), "source 2 unaffected");
        // A third source evicts the stalest tracked bucket, never grows
        // past the cap.
        assert!(limiter.admit(&3, t0 + Duration::from_millis(1)));
        assert!(limiter.sources() <= 2);
    }
}
