//! The AMW1 wire format: compact, versioned, length-prefixed binary
//! frames carrying one sensor chunk each.
//!
//! Byte layout (all integers little-endian; DESIGN.md §12.1):
//!
//! ```text
//! offset  size  field
//!      0     4  magic        b"AMW\x01" (3 magic bytes + version byte)
//!      4     1  channel      side-channel tag (free-form u8, logged only)
//!      5     1  reserved     must be 0 in v1
//!      6     8  printer_id   u64
//!     14     8  seq          per-source monotone sequence number
//!     22     4  payload_len  u32, bytes of payload that follow
//!     26     …  payload      fs: f64 | channels: u16 | samples: u32 | data
//!      …     4  crc32        IEEE CRC-32 over bytes [0, 26 + payload_len)
//! ```
//!
//! The payload's `data` section is channel-major `f64` samples
//! (`channels × samples × 8` bytes); its internal lengths must agree with
//! `payload_len` exactly or the frame is rejected as [`WireError::BadPayload`].
//!
//! Decoding **never panics and never trusts a length it has not
//! validated**: `payload_len` is checked against the decoder's
//! `max_frame_bytes` *before* any allocation, so a hostile 4 GiB length
//! prefix costs nothing. Every malformed input maps to a typed
//! [`WireError`]; the fuzz suite (`tests/wire_fuzz.rs`) feeds random and
//! mutated byte streams through [`FrameDecoder`] asserting exactly that.

use crate::crc::crc32;
use am_dsp::Signal;
use am_fleet::PrinterId;

/// Three magic bytes + the format version as the fourth byte.
pub const MAGIC: [u8; 3] = *b"AMW";
/// Current wire format version.
pub const VERSION: u8 = 1;
/// Fixed header size (everything before the payload).
pub const HEADER_LEN: usize = 26;
/// CRC trailer size.
pub const TRAILER_LEN: usize = 4;
/// Payload prelude: fs (f64) + channels (u16) + samples (u32).
pub const PAYLOAD_PRELUDE_LEN: usize = 14;

/// Why a byte sequence was rejected by the decoder (or a decoded frame
/// by the delivery edge). Never panics, never carries a partially
/// decoded chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended inside a frame (datagram decode, or TCP EOF with
    /// buffered bytes).
    Truncated {
        /// Bytes needed to finish the pending frame.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first bytes are not `b"AMW"` — the stream is not (or no
    /// longer) AMW1-framed.
    BadMagic {
        /// The three bytes found where the magic belongs.
        found: [u8; 3],
    },
    /// Recognized magic but an unsupported version byte.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// The CRC-32 trailer does not match the received bytes.
    BadCrc {
        /// CRC computed over the received frame.
        computed: u32,
        /// CRC carried in the trailer.
        found: u32,
    },
    /// The length prefix exceeds the decoder's frame budget. Checked
    /// before any payload allocation.
    Oversized {
        /// The declared payload length.
        declared: usize,
        /// The configured maximum frame size (header + payload + CRC).
        max: usize,
    },
    /// The frame is well-formed at the byte level but its payload is
    /// not a valid sensor chunk (inconsistent lengths, non-finite or
    /// non-positive sample rate, zero channels, trailing bytes).
    BadPayload {
        /// What was wrong.
        reason: &'static str,
    },
    /// A decoded frame addressed a printer the fleet does not know
    /// (raised by the delivery edge, not the byte decoder).
    UnknownPrinter {
        /// The unknown printer id.
        printer: PrinterId,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            WireError::BadMagic { found } => write!(f, "bad magic {found:02x?}"),
            WireError::BadVersion { found } => write!(f, "unsupported wire version {found}"),
            WireError::BadCrc { computed, found } => {
                write!(
                    f,
                    "crc mismatch: computed {computed:#010x}, frame carries {found:#010x}"
                )
            }
            WireError::Oversized { declared, max } => {
                write!(
                    f,
                    "oversized frame: {declared}-byte payload exceeds {max}-byte budget"
                )
            }
            WireError::BadPayload { reason } => write!(f, "bad payload: {reason}"),
            WireError::UnknownPrinter { printer } => write!(f, "{printer} is not registered"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// A stable, short label for counters and logs (one per variant).
    pub fn kind(&self) -> &'static str {
        match self {
            WireError::Truncated { .. } => "truncated",
            WireError::BadMagic { .. } => "bad_magic",
            WireError::BadVersion { .. } => "bad_version",
            WireError::BadCrc { .. } => "bad_crc",
            WireError::Oversized { .. } => "oversized",
            WireError::BadPayload { .. } => "bad_payload",
            WireError::UnknownPrinter { .. } => "unknown_printer",
        }
    }

    /// Whether a TCP byte stream can continue after this error. Framing
    /// errors (magic/version/CRC/size) mean the stream has desynced —
    /// the connection must be dropped; a `BadPayload` frame had a valid
    /// length prefix, so the next frame boundary is still known.
    pub fn stream_fatal(&self) -> bool {
        !matches!(
            self,
            WireError::BadPayload { .. } | WireError::UnknownPrinter { .. }
        )
    }
}

/// One decoded (or to-be-encoded) sensor-chunk frame.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFrame {
    /// Destination printer.
    pub printer: PrinterId,
    /// Side-channel tag (free-form; carried for SIEM context, not
    /// interpreted by the decoder).
    pub channel: u8,
    /// Per-source monotone sequence number (gap detection only; frames
    /// are delivered in arrival order regardless).
    pub seq: u64,
    /// The sensor chunk.
    pub chunk: Signal,
}

impl WireFrame {
    /// Serialized size of this frame in bytes.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + payload_len(&self.chunk) + TRAILER_LEN
    }

    /// Encodes the frame into a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut out);
        out
    }

    /// Appends the encoded frame to `out` (the byte-log writer's path:
    /// one growing buffer, no per-frame allocation).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.channel);
        out.push(0); // reserved
        out.extend_from_slice(&self.printer.0.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(payload_len(&self.chunk) as u32).to_le_bytes());
        out.extend_from_slice(&self.chunk.fs().to_le_bytes());
        out.extend_from_slice(&(self.chunk.channels() as u16).to_le_bytes());
        out.extend_from_slice(&(self.chunk.len() as u32).to_le_bytes());
        for channel in self.chunk.iter_channels() {
            for v in channel {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        let crc = crc32(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }
}

fn payload_len(chunk: &Signal) -> usize {
    PAYLOAD_PRELUDE_LEN + chunk.channels() * chunk.len() * 8
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

/// Validates header bytes (magic, version, length budget). `bytes` must
/// hold at least [`HEADER_LEN`].
fn check_header(bytes: &[u8], max_frame_bytes: usize) -> Result<usize, WireError> {
    if bytes[..3] != MAGIC {
        return Err(WireError::BadMagic {
            found: [bytes[0], bytes[1], bytes[2]],
        });
    }
    if bytes[3] != VERSION {
        return Err(WireError::BadVersion { found: bytes[3] });
    }
    let declared = read_u32(bytes, 22) as usize;
    if HEADER_LEN + declared + TRAILER_LEN > max_frame_bytes {
        return Err(WireError::Oversized {
            declared,
            max: max_frame_bytes,
        });
    }
    Ok(declared)
}

/// Decodes one complete frame from `bytes` (which must hold exactly
/// header + payload + trailer for the declared length — the caller has
/// already sliced it).
fn decode_complete(bytes: &[u8]) -> Result<WireFrame, WireError> {
    let payload = &bytes[HEADER_LEN..bytes.len() - TRAILER_LEN];
    let carried = read_u32(bytes, bytes.len() - TRAILER_LEN);
    let computed = crc32(&bytes[..bytes.len() - TRAILER_LEN]);
    if carried != computed {
        return Err(WireError::BadCrc {
            computed,
            found: carried,
        });
    }
    if payload.len() < PAYLOAD_PRELUDE_LEN {
        return Err(WireError::BadPayload {
            reason: "payload shorter than its fixed prelude",
        });
    }
    let fs = f64::from_le_bytes(payload[0..8].try_into().expect("bounds checked"));
    let channels = u16::from_le_bytes(payload[8..10].try_into().expect("bounds checked")) as usize;
    let samples = read_u32(payload, 10) as usize;
    if !fs.is_finite() || fs <= 0.0 {
        return Err(WireError::BadPayload {
            reason: "non-finite or non-positive sample rate",
        });
    }
    if channels == 0 {
        return Err(WireError::BadPayload {
            reason: "zero channels",
        });
    }
    let expected = PAYLOAD_PRELUDE_LEN + channels * samples * 8;
    if payload.len() != expected {
        return Err(WireError::BadPayload {
            reason: "payload length disagrees with channels x samples",
        });
    }
    let mut data = Vec::with_capacity(channels);
    let mut at = PAYLOAD_PRELUDE_LEN;
    for _ in 0..channels {
        let mut ch = Vec::with_capacity(samples);
        for _ in 0..samples {
            ch.push(f64::from_le_bytes(
                payload[at..at + 8].try_into().expect("bounds checked"),
            ));
            at += 8;
        }
        data.push(ch);
    }
    let chunk = Signal::from_channels(fs, data).map_err(|_| WireError::BadPayload {
        reason: "channel data rejected by Signal construction",
    })?;
    Ok(WireFrame {
        printer: PrinterId(read_u64(bytes, 6)),
        channel: bytes[4],
        seq: read_u64(bytes, 14),
        chunk,
    })
}

/// Decodes exactly one frame from a datagram. Trailing bytes after the
/// frame are a [`WireError::BadPayload`] (a datagram carries one frame).
///
/// # Errors
///
/// Any [`WireError`] the byte stream maps to; never panics.
pub fn decode_datagram(bytes: &[u8], max_frame_bytes: usize) -> Result<WireFrame, WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            have: bytes.len(),
        });
    }
    let declared = check_header(bytes, max_frame_bytes)?;
    let total = HEADER_LEN + declared + TRAILER_LEN;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(WireError::BadPayload {
            reason: "trailing bytes after the frame",
        });
    }
    decode_complete(bytes)
}

/// Incremental frame decoder for TCP byte streams: feed arbitrary byte
/// slices with [`FrameDecoder::extend`], pull complete frames with
/// [`FrameDecoder::next_frame`]. Partial frames are simply *pending* —
/// [`WireError::Truncated`] only surfaces via [`FrameDecoder::finish`]
/// at end-of-stream.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted lazily so `extend`
    /// stays amortized O(n)).
    consumed: usize,
    max_frame_bytes: usize,
}

impl FrameDecoder {
    /// A decoder that refuses frames larger than `max_frame_bytes`
    /// (header + payload + CRC).
    pub fn new(max_frame_bytes: usize) -> FrameDecoder {
        FrameDecoder {
            buf: Vec::new(),
            consumed: 0,
            max_frame_bytes: max_frame_bytes.max(HEADER_LEN + PAYLOAD_PRELUDE_LEN + TRAILER_LEN),
        }
    }

    /// Appends received bytes to the pending buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.consumed > 0 && self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        } else if self.consumed > self.max_frame_bytes {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into a frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Pulls the next complete frame, `None` if more bytes are needed.
    ///
    /// After a returned `Err`, the decoder's buffer still starts at the
    /// offending frame: a *stream-fatal* error ([`WireError::stream_fatal`])
    /// means the caller must drop the connection, while a `BadPayload`
    /// frame is skipped automatically (its length prefix was valid, so
    /// the next frame boundary is known) and the caller may keep pulling.
    pub fn next_frame(&mut self) -> Option<Result<WireFrame, WireError>> {
        let bytes = &self.buf[self.consumed..];
        if bytes.len() < HEADER_LEN {
            return None;
        }
        let declared = match check_header(bytes, self.max_frame_bytes) {
            Ok(d) => d,
            Err(e) => return Some(Err(e)),
        };
        let total = HEADER_LEN + declared + TRAILER_LEN;
        if bytes.len() < total {
            return None;
        }
        let result = decode_complete(&bytes[..total]);
        match &result {
            // Frame fully consumed (also for BadPayload/BadCrc: the
            // boundary was length-derived and is trustworthy only if the
            // CRC held, so a CRC failure is stream-fatal and the caller
            // drops the connection anyway).
            Ok(_) | Err(WireError::BadPayload { .. }) => self.consumed += total,
            Err(_) => {}
        }
        Some(result)
    }

    /// End-of-stream check: `Ok` if no partial frame is pending,
    /// otherwise the [`WireError::Truncated`] describing it.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the stream ended mid-frame.
    pub fn finish(&self) -> Result<(), WireError> {
        let have = self.pending();
        if have == 0 {
            return Ok(());
        }
        let bytes = &self.buf[self.consumed..];
        let needed = if bytes.len() < HEADER_LEN {
            HEADER_LEN
        } else {
            match check_header(bytes, self.max_frame_bytes) {
                Ok(declared) => HEADER_LEN + declared + TRAILER_LEN,
                // Header never validated: report the minimum that would
                // have let decoding proceed.
                Err(_) => HEADER_LEN,
            }
        };
        Err(WireError::Truncated { needed, have })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(printer: u64, seq: u64) -> WireFrame {
        WireFrame {
            printer: PrinterId(printer),
            channel: 2,
            seq,
            chunk: Signal::from_fn(100.0, 2, 5, |t, f| {
                f[0] = t.sin();
                f[1] = t.cos();
            })
            .unwrap(),
        }
    }

    #[test]
    fn roundtrip_datagram() {
        let f = frame(17, 3);
        let bytes = f.encode();
        assert_eq!(bytes.len(), f.encoded_len());
        let decoded = decode_datagram(&bytes, 1 << 20).unwrap();
        assert_eq!(decoded, f);
    }

    #[test]
    fn roundtrip_stream_across_arbitrary_splits() {
        let frames: Vec<WireFrame> = (0..5).map(|i| frame(i, i)).collect();
        let mut log = Vec::new();
        for f in &frames {
            f.encode_into(&mut log);
        }
        for split in [1usize, 3, 7, 26, 64, log.len()] {
            let mut dec = FrameDecoder::new(1 << 20);
            let mut out = Vec::new();
            for piece in log.chunks(split) {
                dec.extend(piece);
                while let Some(r) = dec.next_frame() {
                    out.push(r.unwrap());
                }
            }
            dec.finish().unwrap();
            assert_eq!(out, frames, "split {split}");
        }
    }

    #[test]
    fn corrupted_byte_is_a_crc_error() {
        let mut bytes = frame(1, 1).encode();
        let at = bytes.len() / 2;
        bytes[at] ^= 0xff;
        assert!(matches!(
            decode_datagram(&bytes, 1 << 20),
            Err(WireError::BadCrc { .. })
        ));
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut bytes = frame(1, 1).encode();
        bytes[22..26].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_datagram(&bytes, 1 << 20),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn truncated_and_magic_and_version() {
        let bytes = frame(1, 1).encode();
        assert!(matches!(
            decode_datagram(&bytes[..10], 1 << 20),
            Err(WireError::Truncated { .. })
        ));
        assert!(matches!(
            decode_datagram(&bytes[..bytes.len() - 1], 1 << 20),
            Err(WireError::Truncated { .. })
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_datagram(&bad, 1 << 20),
            Err(WireError::BadMagic { .. })
        ));
        let mut bad = bytes.clone();
        bad[3] = 9;
        assert!(matches!(
            decode_datagram(&bad, 1 << 20),
            Err(WireError::BadVersion { found: 9 })
        ));
    }

    #[test]
    fn bad_payload_is_skippable_on_a_stream() {
        // A frame whose prelude disagrees with the payload length: the
        // channels field is bumped but the CRC is re-stamped, so the
        // framing is valid and only the payload check fires.
        let good = frame(7, 0);
        let mut bytes = good.encode();
        bytes[HEADER_LEN + 8] = 99;
        let crc_at = bytes.len() - TRAILER_LEN;
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());

        let mut dec = FrameDecoder::new(1 << 20);
        dec.extend(&bytes);
        dec.extend(&good.encode());
        let first = dec.next_frame().unwrap();
        assert!(matches!(first, Err(WireError::BadPayload { .. })));
        assert!(!first.unwrap_err().stream_fatal());
        // The stream continues at the next frame.
        assert_eq!(dec.next_frame().unwrap().unwrap(), good);
        dec.finish().unwrap();
    }
}
