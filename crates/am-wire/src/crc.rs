//! IEEE CRC-32 (polynomial `0xEDB88320`), table-driven, computed at
//! compile time — the same checksum Ethernet, gzip, and PNG use, so any
//! off-the-shelf capture tool can validate recorded wire logs.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, reflected, init/xorout `0xFFFFFFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let base = crc32(b"the quick brown fox");
        let mut bytes = *b"the quick brown fox";
        for i in 0..bytes.len() {
            bytes[i] ^= 0x01;
            assert_ne!(crc32(&bytes), base, "flip at byte {i}");
            bytes[i] ^= 0x01;
        }
    }
}
