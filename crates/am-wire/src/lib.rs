//! # am-wire — the fleet service edge
//!
//! Everything between a print farm's DAQ gateways and the
//! [`am_fleet::Fleet`] supervisor: a compact versioned wire format for
//! sensor chunks, hardened TCP/UDP listeners that decode it into the
//! shard queues, and SIEM-grade alert egress on the way out.
//!
//! ```text
//!  gateways ──AMW1 frames──► [listeners] ──► Fleet shards ──► verdicts ──► [egress] ──► SIEM
//!                             │ rate limit                                │ CEF/JSON, sanitized
//!                             │ frame budget                              │ retry + backoff
//!                             │ CRC + taxonomy                            │ dead-letter spool
//! ```
//!
//! The three layers are independently usable:
//!
//! - [`frame`] — the `AMW1` binary frame format: encode, incremental
//!   decode ([`FrameDecoder`]), and the total [`WireError`] taxonomy.
//!   Decoding arbitrary bytes never panics (`tests/wire_fuzz.rs`).
//! - [`server`] — [`WireServer`]: TCP + UDP listeners with per-source
//!   token-bucket rate limiting ([`limit`]), connection caps, idle
//!   timeouts, and per-source drop/reject counters, plus the
//!   hot-reload entry point ([`WireServer::reload`]).
//! - [`egress`] — [`CefAlert`] verdict rendering with field
//!   sanitization (severity maps to the CEF 0–10 scale, evidence rides
//!   in extension fields) and the [`AlertEgress`] delivery worker
//!   (bounded retry, exponential backoff with deterministic jitter,
//!   dead-letter spool).
//!
//! Determinism contract: the edge drops whole frames or delivers them
//! unmodified in per-source order, so byte-replaying a recorded wire
//! log reproduces the in-process verdict stream exactly
//! (`tests/wire_replay.rs`). Byte layout, limits, and the CEF field
//! mapping are specified in DESIGN.md §12.

pub mod crc;
pub mod egress;
pub mod frame;
pub mod limit;
pub mod server;

pub use crc::crc32;
pub use egress::{
    to_cef, to_json, AlertEgress, AlertFormat, AlertSink, CefAlert, CefDevice, DeadLetter,
    EgressConfig, EgressStats, MemorySink, RetryPolicy, TcpSink,
};
pub use frame::{decode_datagram, FrameDecoder, WireError, WireFrame, HEADER_LEN, TRAILER_LEN};
pub use limit::{SourceLimiter, TokenBucket};
pub use server::{
    EdgeConfig, EdgeReport, EdgeSnapshot, RejectCounts, SourceStats, WireServer, WireSnapshot,
};
