//! SIEM-grade alert egress: CEF/JSON rendering with field sanitization,
//! and a delivery worker with bounded retry, exponential backoff with
//! deterministic jitter, and a dead-letter spool.
//!
//! An intrusion verdict that never reaches the SOC never happened. The
//! fleet's in-process fan-in ([`Fleet::verdicts`](am_fleet::Fleet::verdicts))
//! stops at the process boundary; this module carries verdicts the rest
//! of the way: each [`FleetVerdict`] is rendered into
//! ArcSight CEF or JSON-lines (every dynamic field sanitized — `|`, `=`,
//! `\`, newlines, and control characters can otherwise corrupt a SIEM
//! parse or forge extra fields), then handed to an [`AlertSink`] under a
//! retry policy. The verdict's [`Severity`](nsync::verdict::Severity)
//! maps onto the CEF 0–10 scale via
//! [`Severity::cef`](nsync::verdict::Severity::cef), and its evidence
//! list rides in extension fields. Deliveries that exhaust their retry
//! budget land in a bounded dead-letter spool instead of vanishing, and
//! every outcome is counted (`egress.delivered` / `egress.retries` /
//! `egress.dead_letters` in `am-telemetry`, plus [`EgressStats`]).

use am_fleet::{FleetVerdict, PrinterId};
use crossbeam::channel::Receiver;
use nsync::prelude::SubModule;
use parking_lot::Mutex;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Escapes a value for a CEF *header* field (the `|`-separated prefix):
/// backslash and pipe are escaped, newlines and control characters are
/// replaced by spaces (headers are single-line by definition).
pub fn sanitize_cef_header(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '|' => out.push_str("\\|"),
            '\r' | '\n' => out.push(' '),
            c if c.is_control() => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a value for a CEF *extension* field (the `key=value` tail):
/// backslash, equals, and newlines are escaped per the CEF spec; other
/// control characters are hex-escaped so no raw byte below 0x20 ever
/// reaches the SIEM.
pub fn sanitize_cef_extension(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '=' => out.push_str("\\="),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c if c.is_control() => out.push_str(&format!("\\x{:02x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a string for a JSON value per RFC 8259.
pub fn sanitize_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c.is_control() => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Output format of the egress worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertFormat {
    /// ArcSight Common Event Format, one event per line.
    Cef,
    /// JSON lines, one object per line.
    Json,
}

/// Static identity fields of the CEF prefix (`CEF:0|vendor|product|...`).
#[derive(Debug, Clone)]
pub struct CefDevice {
    /// CEF `Device Vendor`.
    pub vendor: String,
    /// CEF `Device Product`.
    pub product: String,
    /// CEF `Device Version`.
    pub version: String,
}

impl Default for CefDevice {
    fn default() -> Self {
        CefDevice {
            vendor: "nsync".to_string(),
            product: "am-ids".to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
        }
    }
}

fn signature_of(module: SubModule) -> (&'static str, &'static str) {
    // (signature id, human name). The id is keyed by the *dominant*
    // evidence sub-module so SIEM correlation rules written against the
    // pre-verdict surface keep matching; the numeric severity now comes
    // from the fused verdict via `Severity::cef`.
    match module {
        SubModule::CDisp => ("nsync:cdisp", "cumulative alignment displacement exceeded"),
        SubModule::HDist => ("nsync:hdist", "horizontal (timing) distance exceeded"),
        SubModule::VDist => ("nsync:vdist", "vertical (magnitude) distance exceeded"),
    }
}

/// One evidence entry as `channel:module:value>threshold@window`;
/// entries join with `,` into the CEF `cs2` / JSON `evidence` summary.
fn evidence_summary(verdict: &nsync::verdict::Verdict) -> String {
    verdict
        .evidence
        .iter()
        .map(|e| {
            let channel = if e.channel.is_empty() {
                "-"
            } else {
                e.channel.as_str()
            };
            format!(
                "{channel}:{:?}:{:.4}>{:.4}@{}",
                e.module, e.value, e.threshold, e.window
            )
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders one fleet verdict as a single-line CEF:0 event. Every dynamic
/// field passes through the sanitizers above.
pub fn to_cef(fleet_verdict: &FleetVerdict, device: &CefDevice) -> String {
    let verdict = &fleet_verdict.verdict;
    let module = verdict
        .dominant()
        .map(|e| e.module)
        .unwrap_or(SubModule::VDist);
    let (sig, name) = signature_of(module);
    format!(
        "CEF:0|{}|{}|{}|{}|{}|{}|suser={} cs1Label=windowSpan cs1={}-{} cs2Label=evidence cs2={} cf1Label=confidence cf1={:.4} cnt={}",
        sanitize_cef_header(&device.vendor),
        sanitize_cef_header(&device.product),
        sanitize_cef_header(&device.version),
        sanitize_cef_header(sig),
        sanitize_cef_header(name),
        verdict.severity.cef(),
        sanitize_cef_extension(&fleet_verdict.printer.to_string()),
        verdict.window_span.0,
        verdict.window_span.1,
        sanitize_cef_extension(&evidence_summary(verdict)),
        verdict.confidence,
        verdict.evidence.len(),
    )
}

/// A [`FleetVerdict`] paired with its CEF device identity; [`Display`]
/// (and therefore `to_string`) renders the sanitized single-line CEF:0
/// event — handy for formatting verdicts outside the egress worker.
///
/// [`Display`]: std::fmt::Display
#[derive(Debug, Clone)]
pub struct CefAlert<'a> {
    /// The verdict to render.
    pub verdict: &'a FleetVerdict,
    /// The device identity for the CEF prefix.
    pub device: &'a CefDevice,
}

impl std::fmt::Display for CefAlert<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&to_cef(self.verdict, self.device))
    }
}

/// Renders one fleet verdict as a single-line JSON object (evidence as
/// a nested array).
pub fn to_json(fleet_verdict: &FleetVerdict) -> String {
    let verdict = &fleet_verdict.verdict;
    let module = verdict
        .dominant()
        .map(|e| e.module)
        .unwrap_or(SubModule::VDist);
    let (sig, name) = signature_of(module);
    let evidence = verdict
        .evidence
        .iter()
        .map(|e| {
            format!(
                "{{\"channel\":\"{}\",\"module\":\"{:?}\",\"value\":{},\"threshold\":{},\"window\":{}}}",
                sanitize_json(&e.channel),
                e.module,
                e.value,
                e.threshold,
                e.window,
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"signature\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"cefSeverity\":{},\"confidence\":{:.6},\"printer\":\"{}\",\"windowSpan\":[{},{}],\"evidence\":[{}]}}",
        sanitize_json(sig),
        sanitize_json(name),
        sanitize_json(&verdict.severity.to_string()),
        verdict.severity.cef(),
        verdict.confidence,
        sanitize_json(&fleet_verdict.printer.to_string()),
        verdict.window_span.0,
        verdict.window_span.1,
        evidence,
    )
}

/// Where rendered alert lines go. Implementations must be cheap to call
/// repeatedly with the same line: the retry loop re-delivers verbatim.
pub trait AlertSink: Send {
    /// Delivers one rendered alert line.
    ///
    /// # Errors
    ///
    /// A human-readable description of the transient failure; the
    /// worker retries per its [`RetryPolicy`].
    fn deliver(&mut self, line: &str) -> Result<(), String>;
}

/// Newline-delimited delivery over TCP (the classic syslog-ish SIEM
/// collector input). Reconnects lazily: a failed write drops the
/// connection so the next attempt dials afresh.
pub struct TcpSink {
    addr: String,
    connect_timeout: Duration,
    conn: Option<TcpStream>,
}

impl TcpSink {
    /// A sink dialing `addr` (e.g. `"siem.example:6514"`) on demand.
    pub fn new(addr: impl Into<String>, connect_timeout: Duration) -> TcpSink {
        TcpSink {
            addr: addr.into(),
            connect_timeout,
            conn: None,
        }
    }
}

impl AlertSink for TcpSink {
    fn deliver(&mut self, line: &str) -> Result<(), String> {
        use std::net::ToSocketAddrs;
        if self.conn.is_none() {
            let addr = self
                .addr
                .to_socket_addrs()
                .map_err(|e| format!("resolve {}: {e}", self.addr))?
                .next()
                .ok_or_else(|| format!("resolve {}: no address", self.addr))?;
            let stream = TcpStream::connect_timeout(&addr, self.connect_timeout)
                .map_err(|e| format!("connect {}: {e}", self.addr))?;
            stream.set_nodelay(true).ok();
            self.conn = Some(stream);
        }
        let conn = self.conn.as_mut().expect("connection just established");
        let result = conn
            .write_all(line.as_bytes())
            .and_then(|()| conn.write_all(b"\n"));
        if let Err(e) = result {
            self.conn = None;
            return Err(format!("write {}: {e}", self.addr));
        }
        Ok(())
    }
}

/// An in-memory sink (tests, examples, and local capture): lines land
/// in a shared vector.
#[derive(Default, Clone)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Everything delivered so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }
}

impl AlertSink for MemorySink {
    fn deliver(&mut self, line: &str) -> Result<(), String> {
        self.lines.lock().push(line.to_string());
        Ok(())
    }
}

/// Bounded-retry policy with exponential backoff and deterministic
/// jitter (no RNG: jitter derives from the alert's sequence number and
/// attempt, so replayed runs back off identically).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Re-delivery attempts after the first failure (so an alert is
    /// tried `1 + max_retries` times in total).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each attempt.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
    /// Jitter as a fraction of the backoff, in `[0, 1]`: each sleep is
    /// scaled by a deterministic factor in `[1 - jitter, 1 + jitter]`
    /// so synchronized retry storms de-correlate.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
            jitter: 0.2,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry `attempt` (1-based) of alert `seq`.
    pub fn backoff(&self, seq: u64, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20))
            .min(self.max_backoff);
        let jitter = self.jitter.clamp(0.0, 1.0);
        // SplitMix64 of (seq, attempt) → uniform factor in [1-j, 1+j].
        let mut x = seq
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(attempt as u64);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let unit = (x ^ (x >> 31)) as f64 / u64::MAX as f64;
        exp.mul_f64(1.0 - jitter + 2.0 * jitter * unit)
    }
}

/// A verdict whose delivery exhausted its retry budget, preserved
/// rather than lost.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// The printer whose verdict could not be delivered.
    pub printer: PrinterId,
    /// The rendered line exactly as it was (re)tried.
    pub line: String,
    /// The last sink error.
    pub error: String,
    /// Total delivery attempts made.
    pub attempts: u32,
}

/// Egress worker configuration.
///
/// `#[non_exhaustive]`: construct with [`Default`] and the `with_*`
/// methods, matching the house style.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EgressConfig {
    /// Rendered output format.
    pub format: AlertFormat,
    /// CEF device identity (ignored for [`AlertFormat::Json`]).
    pub device: CefDevice,
    /// Retry policy per alert.
    pub retry: RetryPolicy,
    /// Dead letters kept in the spool; beyond this the oldest is evicted
    /// (and counted) so a dead SIEM cannot exhaust memory.
    pub dead_letter_capacity: usize,
}

impl Default for EgressConfig {
    fn default() -> Self {
        EgressConfig {
            format: AlertFormat::Cef,
            device: CefDevice::default(),
            retry: RetryPolicy::default(),
            dead_letter_capacity: 4096,
        }
    }
}

impl EgressConfig {
    /// Overrides the output format.
    #[must_use]
    pub fn with_format(mut self, format: AlertFormat) -> Self {
        self.format = format;
        self
    }

    /// Overrides the CEF device identity.
    #[must_use]
    pub fn with_device(mut self, device: CefDevice) -> Self {
        self.device = device;
        self
    }

    /// Overrides the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the dead-letter spool capacity.
    #[must_use]
    pub fn with_dead_letter_capacity(mut self, capacity: usize) -> Self {
        self.dead_letter_capacity = capacity;
        self
    }
}

/// Live egress counters (cumulative since spawn; also mirrored into
/// `am-telemetry` as `egress.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EgressStats {
    /// Alerts delivered to the sink (possibly after retries).
    pub delivered: u64,
    /// Individual re-delivery attempts across all alerts.
    pub retries: u64,
    /// Alerts that exhausted their retry budget and were spooled.
    pub dead_letters: u64,
    /// Dead letters evicted because the spool itself overflowed.
    pub spool_evicted: u64,
}

struct EgressShared {
    delivered: AtomicU64,
    retries: AtomicU64,
    dead_letters: AtomicU64,
    spool_evicted: AtomicU64,
    spool: Mutex<Vec<DeadLetter>>,
}

/// The delivery worker: consumes the fleet's alert fan-in on its own
/// thread and pushes rendered events into an [`AlertSink`] under the
/// configured retry policy. Spawn with [`AlertEgress::spawn`]; collect
/// the final accounting with [`AlertEgress::finish`].
pub struct AlertEgress {
    shared: Arc<EgressShared>,
    handle: Option<JoinHandle<()>>,
}

impl AlertEgress {
    /// Spawns the worker on `verdicts` (the receiver from
    /// [`Fleet::verdicts`](am_fleet::Fleet::verdicts)). The worker exits
    /// when the channel disconnects — i.e. after
    /// [`Fleet::finish`](am_fleet::Fleet::finish) — having drained every
    /// queued verdict.
    pub fn spawn(
        verdicts: Receiver<FleetVerdict>,
        mut sink: Box<dyn AlertSink>,
        cfg: EgressConfig,
    ) -> AlertEgress {
        let shared = Arc::new(EgressShared {
            delivered: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            dead_letters: AtomicU64::new(0),
            spool_evicted: AtomicU64::new(0),
            spool: Mutex::new(Vec::new()),
        });
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("am-wire-egress".to_string())
            .spawn(move || {
                for (seq, verdict) in (0_u64..).zip(verdicts.iter()) {
                    let line = match cfg.format {
                        AlertFormat::Cef => to_cef(&verdict, &cfg.device),
                        AlertFormat::Json => to_json(&verdict),
                    };
                    deliver_one(&verdict, &line, seq, sink.as_mut(), &cfg, &worker_shared);
                }
            })
            .expect("spawn alert egress worker");
        AlertEgress {
            shared,
            handle: Some(handle),
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> EgressStats {
        EgressStats {
            delivered: self.shared.delivered.load(Ordering::Relaxed),
            retries: self.shared.retries.load(Ordering::Relaxed),
            dead_letters: self.shared.dead_letters.load(Ordering::Relaxed),
            spool_evicted: self.shared.spool_evicted.load(Ordering::Relaxed),
        }
    }

    /// Waits for the worker to drain (the alert channel must have been
    /// disconnected, e.g. by [`Fleet::finish`](am_fleet::Fleet::finish))
    /// and returns the final counters plus the dead-letter spool.
    pub fn finish(mut self) -> (EgressStats, Vec<DeadLetter>) {
        if let Some(handle) = self.handle.take() {
            handle.join().expect("egress worker never panics");
        }
        let stats = self.stats();
        let spool = std::mem::take(&mut *self.shared.spool.lock());
        (stats, spool)
    }
}

fn deliver_one(
    verdict: &FleetVerdict,
    line: &str,
    seq: u64,
    sink: &mut dyn AlertSink,
    cfg: &EgressConfig,
    shared: &EgressShared,
) {
    let mut attempts: u32 = 0;
    loop {
        attempts += 1;
        match sink.deliver(line) {
            Ok(()) => {
                shared.delivered.fetch_add(1, Ordering::Relaxed);
                am_telemetry::count!("egress.delivered");
                return;
            }
            Err(error) => {
                if attempts > cfg.retry.max_retries {
                    shared.dead_letters.fetch_add(1, Ordering::Relaxed);
                    am_telemetry::count!("egress.dead_letters");
                    let mut spool = shared.spool.lock();
                    if spool.len() >= cfg.dead_letter_capacity.max(1) {
                        spool.remove(0);
                        shared.spool_evicted.fetch_add(1, Ordering::Relaxed);
                        am_telemetry::count!("egress.spool_evicted");
                    }
                    spool.push(DeadLetter {
                        printer: verdict.printer,
                        line: line.to_string(),
                        error,
                        attempts,
                    });
                    return;
                }
                shared.retries.fetch_add(1, Ordering::Relaxed);
                am_telemetry::count!("egress.retries");
                std::thread::sleep(cfg.retry.backoff(seq, attempts));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;
    use nsync::verdict::{ChannelEvidence, Verdict};

    fn alert(printer: u64) -> FleetVerdict {
        FleetVerdict {
            printer: PrinterId(printer),
            verdict: Verdict::from_evidence(
                vec![ChannelEvidence {
                    channel: "acc".to_string(),
                    module: SubModule::VDist,
                    value: 1.5,
                    threshold: 0.9,
                    window: 12,
                }],
                (12, 12),
                0.25,
            )
            .expect("one over-threshold evidence entry yields a verdict"),
        }
    }

    #[test]
    fn cef_line_is_sanitized_and_parseable() {
        let device = CefDevice {
            vendor: "bad|vendor\nx".to_string(),
            product: "p=q".to_string(),
            version: "1".to_string(),
        };
        let line = to_cef(&alert(3), &device);
        assert!(line.starts_with("CEF:0|"));
        assert!(!line.contains('\n'), "{line}");
        // The raw pipe in the vendor must be escaped: exactly 7 unescaped
        // pipes separate the 8 CEF fields.
        let unescaped = line
            .as_bytes()
            .windows(2)
            .filter(|w| w[1] == b'|' && w[0] != b'\\')
            .count();
        assert_eq!(unescaped, 7, "{line}");
        assert!(line.contains("suser=printer-3"));
    }

    #[test]
    fn json_line_escapes_control_characters() {
        let line = to_json(&alert(1));
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"printer\":\"printer-1\""));
        assert_eq!(sanitize_json("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
        assert_eq!(sanitize_cef_extension("k=v\nx"), "k\\=v\\nx");
    }

    #[test]
    fn backoff_grows_and_jitter_is_deterministic() {
        let retry = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            jitter: 0.2,
        };
        assert_eq!(retry.backoff(7, 1), retry.backoff(7, 1));
        let b1 = retry.backoff(7, 1);
        let b4 = retry.backoff(7, 4);
        assert!(b4 > b1, "{b1:?} vs {b4:?}");
        assert!(retry.backoff(7, 20) <= Duration::from_millis(600));
    }

    /// Fails the first `failures` deliveries, then succeeds.
    struct Flaky {
        failures: u32,
        inner: MemorySink,
    }

    impl AlertSink for Flaky {
        fn deliver(&mut self, line: &str) -> Result<(), String> {
            if self.failures > 0 {
                self.failures -= 1;
                return Err("transient".to_string());
            }
            self.inner.deliver(line)
        }
    }

    #[test]
    fn retries_then_delivers() {
        let (tx, rx) = bounded(8);
        let sink = MemorySink::new();
        let egress = AlertEgress::spawn(
            rx,
            Box::new(Flaky {
                failures: 2,
                inner: sink.clone(),
            }),
            EgressConfig::default().with_retry(RetryPolicy {
                max_retries: 3,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                jitter: 0.0,
            }),
        );
        tx.send(alert(5)).unwrap();
        drop(tx);
        let (stats, dead) = egress.finish();
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.retries, 2);
        assert!(dead.is_empty());
        assert_eq!(sink.lines().len(), 1);
    }

    #[test]
    fn exhausted_retries_land_in_the_dead_letter_spool() {
        let (tx, rx) = bounded(8);
        let egress = AlertEgress::spawn(
            rx,
            Box::new(Flaky {
                failures: u32::MAX,
                inner: MemorySink::new(),
            }),
            EgressConfig::default()
                .with_format(AlertFormat::Json)
                .with_dead_letter_capacity(1)
                .with_retry(RetryPolicy {
                    max_retries: 1,
                    base_backoff: Duration::from_millis(1),
                    max_backoff: Duration::from_millis(1),
                    jitter: 0.0,
                }),
        );
        tx.send(alert(1)).unwrap();
        tx.send(alert(2)).unwrap();
        drop(tx);
        let (stats, dead) = egress.finish();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dead_letters, 2);
        assert_eq!(stats.spool_evicted, 1, "capacity-1 spool evicts one");
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].printer, PrinterId(2));
        assert_eq!(dead[0].attempts, 2);
    }
}
