/root/repo/target/release/deps/am_baselines-1d748baa2d309a26.d: crates/am-baselines/src/lib.rs crates/am-baselines/src/bayens.rs crates/am-baselines/src/belikovetsky.rs crates/am-baselines/src/error.rs crates/am-baselines/src/gao.rs crates/am-baselines/src/gatlin.rs crates/am-baselines/src/moore.rs crates/am-baselines/src/run.rs

/root/repo/target/release/deps/libam_baselines-1d748baa2d309a26.rlib: crates/am-baselines/src/lib.rs crates/am-baselines/src/bayens.rs crates/am-baselines/src/belikovetsky.rs crates/am-baselines/src/error.rs crates/am-baselines/src/gao.rs crates/am-baselines/src/gatlin.rs crates/am-baselines/src/moore.rs crates/am-baselines/src/run.rs

/root/repo/target/release/deps/libam_baselines-1d748baa2d309a26.rmeta: crates/am-baselines/src/lib.rs crates/am-baselines/src/bayens.rs crates/am-baselines/src/belikovetsky.rs crates/am-baselines/src/error.rs crates/am-baselines/src/gao.rs crates/am-baselines/src/gatlin.rs crates/am-baselines/src/moore.rs crates/am-baselines/src/run.rs

crates/am-baselines/src/lib.rs:
crates/am-baselines/src/bayens.rs:
crates/am-baselines/src/belikovetsky.rs:
crates/am-baselines/src/error.rs:
crates/am-baselines/src/gao.rs:
crates/am-baselines/src/gatlin.rs:
crates/am-baselines/src/moore.rs:
crates/am-baselines/src/run.rs:
