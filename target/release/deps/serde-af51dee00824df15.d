/root/repo/target/release/deps/serde-af51dee00824df15.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-af51dee00824df15.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-af51dee00824df15.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
