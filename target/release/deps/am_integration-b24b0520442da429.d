/root/repo/target/release/deps/am_integration-b24b0520442da429.d: crates/am-integration/src/lib.rs

/root/repo/target/release/deps/libam_integration-b24b0520442da429.rlib: crates/am-integration/src/lib.rs

/root/repo/target/release/deps/libam_integration-b24b0520442da429.rmeta: crates/am-integration/src/lib.rs

crates/am-integration/src/lib.rs:
