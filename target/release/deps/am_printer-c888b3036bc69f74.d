/root/repo/target/release/deps/am_printer-c888b3036bc69f74.d: crates/am-printer/src/lib.rs crates/am-printer/src/attack.rs crates/am-printer/src/config.rs crates/am-printer/src/error.rs crates/am-printer/src/firmware.rs crates/am-printer/src/noise.rs crates/am-printer/src/thermal.rs crates/am-printer/src/trajectory.rs

/root/repo/target/release/deps/libam_printer-c888b3036bc69f74.rlib: crates/am-printer/src/lib.rs crates/am-printer/src/attack.rs crates/am-printer/src/config.rs crates/am-printer/src/error.rs crates/am-printer/src/firmware.rs crates/am-printer/src/noise.rs crates/am-printer/src/thermal.rs crates/am-printer/src/trajectory.rs

/root/repo/target/release/deps/libam_printer-c888b3036bc69f74.rmeta: crates/am-printer/src/lib.rs crates/am-printer/src/attack.rs crates/am-printer/src/config.rs crates/am-printer/src/error.rs crates/am-printer/src/firmware.rs crates/am-printer/src/noise.rs crates/am-printer/src/thermal.rs crates/am-printer/src/trajectory.rs

crates/am-printer/src/lib.rs:
crates/am-printer/src/attack.rs:
crates/am-printer/src/config.rs:
crates/am-printer/src/error.rs:
crates/am-printer/src/firmware.rs:
crates/am-printer/src/noise.rs:
crates/am-printer/src/thermal.rs:
crates/am-printer/src/trajectory.rs:
