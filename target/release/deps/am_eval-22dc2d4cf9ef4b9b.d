/root/repo/target/release/deps/am_eval-22dc2d4cf9ef4b9b.d: crates/am-eval/src/lib.rs crates/am-eval/src/ablations.rs crates/am-eval/src/degradation.rs crates/am-eval/src/figures.rs crates/am-eval/src/harness.rs crates/am-eval/src/metrics.rs crates/am-eval/src/report.rs crates/am-eval/src/tables.rs

/root/repo/target/release/deps/libam_eval-22dc2d4cf9ef4b9b.rlib: crates/am-eval/src/lib.rs crates/am-eval/src/ablations.rs crates/am-eval/src/degradation.rs crates/am-eval/src/figures.rs crates/am-eval/src/harness.rs crates/am-eval/src/metrics.rs crates/am-eval/src/report.rs crates/am-eval/src/tables.rs

/root/repo/target/release/deps/libam_eval-22dc2d4cf9ef4b9b.rmeta: crates/am-eval/src/lib.rs crates/am-eval/src/ablations.rs crates/am-eval/src/degradation.rs crates/am-eval/src/figures.rs crates/am-eval/src/harness.rs crates/am-eval/src/metrics.rs crates/am-eval/src/report.rs crates/am-eval/src/tables.rs

crates/am-eval/src/lib.rs:
crates/am-eval/src/ablations.rs:
crates/am-eval/src/degradation.rs:
crates/am-eval/src/figures.rs:
crates/am-eval/src/harness.rs:
crates/am-eval/src/metrics.rs:
crates/am-eval/src/report.rs:
crates/am-eval/src/tables.rs:
