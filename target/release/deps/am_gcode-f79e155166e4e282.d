/root/repo/target/release/deps/am_gcode-f79e155166e4e282.d: crates/am-gcode/src/lib.rs crates/am-gcode/src/attacks.rs crates/am-gcode/src/error.rs crates/am-gcode/src/geometry.rs crates/am-gcode/src/model.rs crates/am-gcode/src/parser.rs crates/am-gcode/src/slicer.rs crates/am-gcode/src/writer.rs

/root/repo/target/release/deps/libam_gcode-f79e155166e4e282.rlib: crates/am-gcode/src/lib.rs crates/am-gcode/src/attacks.rs crates/am-gcode/src/error.rs crates/am-gcode/src/geometry.rs crates/am-gcode/src/model.rs crates/am-gcode/src/parser.rs crates/am-gcode/src/slicer.rs crates/am-gcode/src/writer.rs

/root/repo/target/release/deps/libam_gcode-f79e155166e4e282.rmeta: crates/am-gcode/src/lib.rs crates/am-gcode/src/attacks.rs crates/am-gcode/src/error.rs crates/am-gcode/src/geometry.rs crates/am-gcode/src/model.rs crates/am-gcode/src/parser.rs crates/am-gcode/src/slicer.rs crates/am-gcode/src/writer.rs

crates/am-gcode/src/lib.rs:
crates/am-gcode/src/attacks.rs:
crates/am-gcode/src/error.rs:
crates/am-gcode/src/geometry.rs:
crates/am-gcode/src/model.rs:
crates/am-gcode/src/parser.rs:
crates/am-gcode/src/slicer.rs:
crates/am-gcode/src/writer.rs:
