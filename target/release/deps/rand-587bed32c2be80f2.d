/root/repo/target/release/deps/rand-587bed32c2be80f2.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-587bed32c2be80f2.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-587bed32c2be80f2.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
