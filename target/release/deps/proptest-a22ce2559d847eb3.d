/root/repo/target/release/deps/proptest-a22ce2559d847eb3.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-a22ce2559d847eb3.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs

/root/repo/target/release/deps/libproptest-a22ce2559d847eb3.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
