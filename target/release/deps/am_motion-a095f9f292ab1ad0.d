/root/repo/target/release/deps/am_motion-a095f9f292ab1ad0.d: crates/am-motion/src/lib.rs crates/am-motion/src/kinematics.rs crates/am-motion/src/planner.rs crates/am-motion/src/profile.rs crates/am-motion/src/segment.rs crates/am-motion/src/types.rs

/root/repo/target/release/deps/libam_motion-a095f9f292ab1ad0.rlib: crates/am-motion/src/lib.rs crates/am-motion/src/kinematics.rs crates/am-motion/src/planner.rs crates/am-motion/src/profile.rs crates/am-motion/src/segment.rs crates/am-motion/src/types.rs

/root/repo/target/release/deps/libam_motion-a095f9f292ab1ad0.rmeta: crates/am-motion/src/lib.rs crates/am-motion/src/kinematics.rs crates/am-motion/src/planner.rs crates/am-motion/src/profile.rs crates/am-motion/src/segment.rs crates/am-motion/src/types.rs

crates/am-motion/src/lib.rs:
crates/am-motion/src/kinematics.rs:
crates/am-motion/src/planner.rs:
crates/am-motion/src/profile.rs:
crates/am-motion/src/segment.rs:
crates/am-motion/src/types.rs:
