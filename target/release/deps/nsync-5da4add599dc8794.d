/root/repo/target/release/deps/nsync-5da4add599dc8794.d: crates/nsync/src/lib.rs crates/nsync/src/comparator.rs crates/nsync/src/discriminator.rs crates/nsync/src/error.rs crates/nsync/src/health.rs crates/nsync/src/ids.rs crates/nsync/src/occ.rs crates/nsync/src/streaming.rs

/root/repo/target/release/deps/libnsync-5da4add599dc8794.rlib: crates/nsync/src/lib.rs crates/nsync/src/comparator.rs crates/nsync/src/discriminator.rs crates/nsync/src/error.rs crates/nsync/src/health.rs crates/nsync/src/ids.rs crates/nsync/src/occ.rs crates/nsync/src/streaming.rs

/root/repo/target/release/deps/libnsync-5da4add599dc8794.rmeta: crates/nsync/src/lib.rs crates/nsync/src/comparator.rs crates/nsync/src/discriminator.rs crates/nsync/src/error.rs crates/nsync/src/health.rs crates/nsync/src/ids.rs crates/nsync/src/occ.rs crates/nsync/src/streaming.rs

crates/nsync/src/lib.rs:
crates/nsync/src/comparator.rs:
crates/nsync/src/discriminator.rs:
crates/nsync/src/error.rs:
crates/nsync/src/health.rs:
crates/nsync/src/ids.rs:
crates/nsync/src/occ.rs:
crates/nsync/src/streaming.rs:
