/root/repo/target/release/deps/am_dsp-a17fdca0d5f71afc.d: crates/am-dsp/src/lib.rs crates/am-dsp/src/error.rs crates/am-dsp/src/fft.rs crates/am-dsp/src/filter.rs crates/am-dsp/src/io.rs crates/am-dsp/src/linalg.rs crates/am-dsp/src/metrics.rs crates/am-dsp/src/pca.rs crates/am-dsp/src/resample.rs crates/am-dsp/src/signal.rs crates/am-dsp/src/stats.rs crates/am-dsp/src/stft.rs crates/am-dsp/src/tde.rs crates/am-dsp/src/window.rs

/root/repo/target/release/deps/libam_dsp-a17fdca0d5f71afc.rlib: crates/am-dsp/src/lib.rs crates/am-dsp/src/error.rs crates/am-dsp/src/fft.rs crates/am-dsp/src/filter.rs crates/am-dsp/src/io.rs crates/am-dsp/src/linalg.rs crates/am-dsp/src/metrics.rs crates/am-dsp/src/pca.rs crates/am-dsp/src/resample.rs crates/am-dsp/src/signal.rs crates/am-dsp/src/stats.rs crates/am-dsp/src/stft.rs crates/am-dsp/src/tde.rs crates/am-dsp/src/window.rs

/root/repo/target/release/deps/libam_dsp-a17fdca0d5f71afc.rmeta: crates/am-dsp/src/lib.rs crates/am-dsp/src/error.rs crates/am-dsp/src/fft.rs crates/am-dsp/src/filter.rs crates/am-dsp/src/io.rs crates/am-dsp/src/linalg.rs crates/am-dsp/src/metrics.rs crates/am-dsp/src/pca.rs crates/am-dsp/src/resample.rs crates/am-dsp/src/signal.rs crates/am-dsp/src/stats.rs crates/am-dsp/src/stft.rs crates/am-dsp/src/tde.rs crates/am-dsp/src/window.rs

crates/am-dsp/src/lib.rs:
crates/am-dsp/src/error.rs:
crates/am-dsp/src/fft.rs:
crates/am-dsp/src/filter.rs:
crates/am-dsp/src/io.rs:
crates/am-dsp/src/linalg.rs:
crates/am-dsp/src/metrics.rs:
crates/am-dsp/src/pca.rs:
crates/am-dsp/src/resample.rs:
crates/am-dsp/src/signal.rs:
crates/am-dsp/src/stats.rs:
crates/am-dsp/src/stft.rs:
crates/am-dsp/src/tde.rs:
crates/am-dsp/src/window.rs:
