/root/repo/target/release/deps/am_sync-f9affe930cbaab6f.d: crates/am-sync/src/lib.rs crates/am-sync/src/align.rs crates/am-sync/src/autotune.rs crates/am-sync/src/dtw.rs crates/am-sync/src/dwm.rs crates/am-sync/src/error.rs crates/am-sync/src/fastdtw.rs crates/am-sync/src/online_dtw.rs

/root/repo/target/release/deps/libam_sync-f9affe930cbaab6f.rlib: crates/am-sync/src/lib.rs crates/am-sync/src/align.rs crates/am-sync/src/autotune.rs crates/am-sync/src/dtw.rs crates/am-sync/src/dwm.rs crates/am-sync/src/error.rs crates/am-sync/src/fastdtw.rs crates/am-sync/src/online_dtw.rs

/root/repo/target/release/deps/libam_sync-f9affe930cbaab6f.rmeta: crates/am-sync/src/lib.rs crates/am-sync/src/align.rs crates/am-sync/src/autotune.rs crates/am-sync/src/dtw.rs crates/am-sync/src/dwm.rs crates/am-sync/src/error.rs crates/am-sync/src/fastdtw.rs crates/am-sync/src/online_dtw.rs

crates/am-sync/src/lib.rs:
crates/am-sync/src/align.rs:
crates/am-sync/src/autotune.rs:
crates/am-sync/src/dtw.rs:
crates/am-sync/src/dwm.rs:
crates/am-sync/src/error.rs:
crates/am-sync/src/fastdtw.rs:
crates/am-sync/src/online_dtw.rs:
