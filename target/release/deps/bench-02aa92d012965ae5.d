/root/repo/target/release/deps/bench-02aa92d012965ae5.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-02aa92d012965ae5.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbench-02aa92d012965ae5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
