/root/repo/target/release/deps/am_dataset-36756bcf833f5c11.d: crates/am-dataset/src/lib.rs crates/am-dataset/src/error.rs crates/am-dataset/src/generate.rs crates/am-dataset/src/spec.rs

/root/repo/target/release/deps/libam_dataset-36756bcf833f5c11.rlib: crates/am-dataset/src/lib.rs crates/am-dataset/src/error.rs crates/am-dataset/src/generate.rs crates/am-dataset/src/spec.rs

/root/repo/target/release/deps/libam_dataset-36756bcf833f5c11.rmeta: crates/am-dataset/src/lib.rs crates/am-dataset/src/error.rs crates/am-dataset/src/generate.rs crates/am-dataset/src/spec.rs

crates/am-dataset/src/lib.rs:
crates/am-dataset/src/error.rs:
crates/am-dataset/src/generate.rs:
crates/am-dataset/src/spec.rs:
