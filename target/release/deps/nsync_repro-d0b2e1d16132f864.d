/root/repo/target/release/deps/nsync_repro-d0b2e1d16132f864.d: crates/am-eval/src/bin/nsync-repro.rs

/root/repo/target/release/deps/nsync_repro-d0b2e1d16132f864: crates/am-eval/src/bin/nsync-repro.rs

crates/am-eval/src/bin/nsync-repro.rs:
