/root/repo/target/release/deps/crossbeam-da915930401ff163.d: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs vendor/crossbeam/src/thread.rs

/root/repo/target/release/deps/libcrossbeam-da915930401ff163.rlib: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs vendor/crossbeam/src/thread.rs

/root/repo/target/release/deps/libcrossbeam-da915930401ff163.rmeta: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs vendor/crossbeam/src/thread.rs

vendor/crossbeam/src/lib.rs:
vendor/crossbeam/src/channel.rs:
vendor/crossbeam/src/thread.rs:
