/root/repo/target/release/deps/bytes-6f96fbf0552f2998.d: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-6f96fbf0552f2998.rlib: vendor/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-6f96fbf0552f2998.rmeta: vendor/bytes/src/lib.rs

vendor/bytes/src/lib.rs:
