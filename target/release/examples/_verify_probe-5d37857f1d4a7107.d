/root/repo/target/release/examples/_verify_probe-5d37857f1d4a7107.d: crates/am-eval/../../examples/_verify_probe.rs

/root/repo/target/release/examples/_verify_probe-5d37857f1d4a7107: crates/am-eval/../../examples/_verify_probe.rs

crates/am-eval/../../examples/_verify_probe.rs:
