/root/repo/target/release/examples/diag-cb5cd96bf5231eba.d: crates/am-integration/examples/diag.rs

/root/repo/target/release/examples/diag-cb5cd96bf5231eba: crates/am-integration/examples/diag.rs

crates/am-integration/examples/diag.rs:
