/root/repo/target/release/examples/degraded_monitor-f44469cfc48e32cf.d: crates/am-eval/../../examples/degraded_monitor.rs

/root/repo/target/release/examples/degraded_monitor-f44469cfc48e32cf: crates/am-eval/../../examples/degraded_monitor.rs

crates/am-eval/../../examples/degraded_monitor.rs:
