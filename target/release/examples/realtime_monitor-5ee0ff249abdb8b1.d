/root/repo/target/release/examples/realtime_monitor-5ee0ff249abdb8b1.d: crates/am-eval/../../examples/realtime_monitor.rs

/root/repo/target/release/examples/realtime_monitor-5ee0ff249abdb8b1: crates/am-eval/../../examples/realtime_monitor.rs

crates/am-eval/../../examples/realtime_monitor.rs:
