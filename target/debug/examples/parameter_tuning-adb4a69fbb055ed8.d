/root/repo/target/debug/examples/parameter_tuning-adb4a69fbb055ed8.d: crates/am-eval/../../examples/parameter_tuning.rs

/root/repo/target/debug/examples/parameter_tuning-adb4a69fbb055ed8: crates/am-eval/../../examples/parameter_tuning.rs

crates/am-eval/../../examples/parameter_tuning.rs:
