/root/repo/target/debug/examples/reproduce_tables-77db6a9f976fb616.d: crates/am-eval/../../examples/reproduce_tables.rs Cargo.toml

/root/repo/target/debug/examples/libreproduce_tables-77db6a9f976fb616.rmeta: crates/am-eval/../../examples/reproduce_tables.rs Cargo.toml

crates/am-eval/../../examples/reproduce_tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
