/root/repo/target/debug/examples/compare_synchronizers-894e3e16fccc7977.d: crates/am-eval/../../examples/compare_synchronizers.rs Cargo.toml

/root/repo/target/debug/examples/libcompare_synchronizers-894e3e16fccc7977.rmeta: crates/am-eval/../../examples/compare_synchronizers.rs Cargo.toml

crates/am-eval/../../examples/compare_synchronizers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
