/root/repo/target/debug/examples/reproduce_tables-f697f61db79cb87a.d: crates/am-eval/../../examples/reproduce_tables.rs

/root/repo/target/debug/examples/reproduce_tables-f697f61db79cb87a: crates/am-eval/../../examples/reproduce_tables.rs

crates/am-eval/../../examples/reproduce_tables.rs:
