/root/repo/target/debug/examples/degraded_monitor-cc0216f044a7876f.d: crates/am-eval/../../examples/degraded_monitor.rs Cargo.toml

/root/repo/target/debug/examples/libdegraded_monitor-cc0216f044a7876f.rmeta: crates/am-eval/../../examples/degraded_monitor.rs Cargo.toml

crates/am-eval/../../examples/degraded_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
