/root/repo/target/debug/examples/quickstart-588c34f11d15c5c4.d: crates/am-eval/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-588c34f11d15c5c4: crates/am-eval/../../examples/quickstart.rs

crates/am-eval/../../examples/quickstart.rs:
