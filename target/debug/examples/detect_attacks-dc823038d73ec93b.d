/root/repo/target/debug/examples/detect_attacks-dc823038d73ec93b.d: crates/am-eval/../../examples/detect_attacks.rs

/root/repo/target/debug/examples/detect_attacks-dc823038d73ec93b: crates/am-eval/../../examples/detect_attacks.rs

crates/am-eval/../../examples/detect_attacks.rs:
