/root/repo/target/debug/examples/realtime_monitor-bf14e24c6dfdfa44.d: crates/am-eval/../../examples/realtime_monitor.rs Cargo.toml

/root/repo/target/debug/examples/librealtime_monitor-bf14e24c6dfdfa44.rmeta: crates/am-eval/../../examples/realtime_monitor.rs Cargo.toml

crates/am-eval/../../examples/realtime_monitor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
