/root/repo/target/debug/examples/quickstart-c2c29fc8c50c2519.d: crates/am-eval/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-c2c29fc8c50c2519.rmeta: crates/am-eval/../../examples/quickstart.rs Cargo.toml

crates/am-eval/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
