/root/repo/target/debug/examples/realtime_monitor-77ff2c817fdd24b9.d: crates/am-eval/../../examples/realtime_monitor.rs

/root/repo/target/debug/examples/realtime_monitor-77ff2c817fdd24b9: crates/am-eval/../../examples/realtime_monitor.rs

crates/am-eval/../../examples/realtime_monitor.rs:
