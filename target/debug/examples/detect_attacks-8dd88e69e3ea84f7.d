/root/repo/target/debug/examples/detect_attacks-8dd88e69e3ea84f7.d: crates/am-eval/../../examples/detect_attacks.rs Cargo.toml

/root/repo/target/debug/examples/libdetect_attacks-8dd88e69e3ea84f7.rmeta: crates/am-eval/../../examples/detect_attacks.rs Cargo.toml

crates/am-eval/../../examples/detect_attacks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
