/root/repo/target/debug/examples/degraded_monitor-061e2a008b580372.d: crates/am-eval/../../examples/degraded_monitor.rs

/root/repo/target/debug/examples/degraded_monitor-061e2a008b580372: crates/am-eval/../../examples/degraded_monitor.rs

crates/am-eval/../../examples/degraded_monitor.rs:
