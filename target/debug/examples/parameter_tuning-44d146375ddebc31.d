/root/repo/target/debug/examples/parameter_tuning-44d146375ddebc31.d: crates/am-eval/../../examples/parameter_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libparameter_tuning-44d146375ddebc31.rmeta: crates/am-eval/../../examples/parameter_tuning.rs Cargo.toml

crates/am-eval/../../examples/parameter_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
