/root/repo/target/debug/examples/compare_synchronizers-d806496b366271dd.d: crates/am-eval/../../examples/compare_synchronizers.rs

/root/repo/target/debug/examples/compare_synchronizers-d806496b366271dd: crates/am-eval/../../examples/compare_synchronizers.rs

crates/am-eval/../../examples/compare_synchronizers.rs:
