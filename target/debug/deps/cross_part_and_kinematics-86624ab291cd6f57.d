/root/repo/target/debug/deps/cross_part_and_kinematics-86624ab291cd6f57.d: crates/am-integration/../../tests/cross_part_and_kinematics.rs

/root/repo/target/debug/deps/cross_part_and_kinematics-86624ab291cd6f57: crates/am-integration/../../tests/cross_part_and_kinematics.rs

crates/am-integration/../../tests/cross_part_and_kinematics.rs:
