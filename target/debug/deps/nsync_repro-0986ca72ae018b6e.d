/root/repo/target/debug/deps/nsync_repro-0986ca72ae018b6e.d: crates/am-eval/src/bin/nsync-repro.rs

/root/repo/target/debug/deps/nsync_repro-0986ca72ae018b6e: crates/am-eval/src/bin/nsync-repro.rs

crates/am-eval/src/bin/nsync-repro.rs:
