/root/repo/target/debug/deps/am_sync-7f16297701465e72.d: crates/am-sync/src/lib.rs crates/am-sync/src/align.rs crates/am-sync/src/autotune.rs crates/am-sync/src/dtw.rs crates/am-sync/src/dwm.rs crates/am-sync/src/error.rs crates/am-sync/src/fastdtw.rs crates/am-sync/src/online_dtw.rs Cargo.toml

/root/repo/target/debug/deps/libam_sync-7f16297701465e72.rmeta: crates/am-sync/src/lib.rs crates/am-sync/src/align.rs crates/am-sync/src/autotune.rs crates/am-sync/src/dtw.rs crates/am-sync/src/dwm.rs crates/am-sync/src/error.rs crates/am-sync/src/fastdtw.rs crates/am-sync/src/online_dtw.rs Cargo.toml

crates/am-sync/src/lib.rs:
crates/am-sync/src/align.rs:
crates/am-sync/src/autotune.rs:
crates/am-sync/src/dtw.rs:
crates/am-sync/src/dwm.rs:
crates/am-sync/src/error.rs:
crates/am-sync/src/fastdtw.rs:
crates/am-sync/src/online_dtw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
