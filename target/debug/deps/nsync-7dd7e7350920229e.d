/root/repo/target/debug/deps/nsync-7dd7e7350920229e.d: crates/nsync/src/lib.rs crates/nsync/src/comparator.rs crates/nsync/src/discriminator.rs crates/nsync/src/error.rs crates/nsync/src/health.rs crates/nsync/src/ids.rs crates/nsync/src/occ.rs crates/nsync/src/streaming.rs Cargo.toml

/root/repo/target/debug/deps/libnsync-7dd7e7350920229e.rmeta: crates/nsync/src/lib.rs crates/nsync/src/comparator.rs crates/nsync/src/discriminator.rs crates/nsync/src/error.rs crates/nsync/src/health.rs crates/nsync/src/ids.rs crates/nsync/src/occ.rs crates/nsync/src/streaming.rs Cargo.toml

crates/nsync/src/lib.rs:
crates/nsync/src/comparator.rs:
crates/nsync/src/discriminator.rs:
crates/nsync/src/error.rs:
crates/nsync/src/health.rs:
crates/nsync/src/ids.rs:
crates/nsync/src/occ.rs:
crates/nsync/src/streaming.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
