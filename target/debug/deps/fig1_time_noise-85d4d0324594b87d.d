/root/repo/target/debug/deps/fig1_time_noise-85d4d0324594b87d.d: crates/bench/benches/fig1_time_noise.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_time_noise-85d4d0324594b87d.rmeta: crates/bench/benches/fig1_time_noise.rs Cargo.toml

crates/bench/benches/fig1_time_noise.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
