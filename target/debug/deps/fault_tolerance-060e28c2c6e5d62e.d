/root/repo/target/debug/deps/fault_tolerance-060e28c2c6e5d62e.d: crates/am-integration/../../tests/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance-060e28c2c6e5d62e.rmeta: crates/am-integration/../../tests/fault_tolerance.rs Cargo.toml

crates/am-integration/../../tests/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
