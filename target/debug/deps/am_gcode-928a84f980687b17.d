/root/repo/target/debug/deps/am_gcode-928a84f980687b17.d: crates/am-gcode/src/lib.rs crates/am-gcode/src/attacks.rs crates/am-gcode/src/error.rs crates/am-gcode/src/geometry.rs crates/am-gcode/src/model.rs crates/am-gcode/src/parser.rs crates/am-gcode/src/slicer.rs crates/am-gcode/src/writer.rs

/root/repo/target/debug/deps/am_gcode-928a84f980687b17: crates/am-gcode/src/lib.rs crates/am-gcode/src/attacks.rs crates/am-gcode/src/error.rs crates/am-gcode/src/geometry.rs crates/am-gcode/src/model.rs crates/am-gcode/src/parser.rs crates/am-gcode/src/slicer.rs crates/am-gcode/src/writer.rs

crates/am-gcode/src/lib.rs:
crates/am-gcode/src/attacks.rs:
crates/am-gcode/src/error.rs:
crates/am-gcode/src/geometry.rs:
crates/am-gcode/src/model.rs:
crates/am-gcode/src/parser.rs:
crates/am-gcode/src/slicer.rs:
crates/am-gcode/src/writer.rs:
