/root/repo/target/debug/deps/never_panics-09df562c3d0fc591.d: crates/am-integration/../../tests/never_panics.rs Cargo.toml

/root/repo/target/debug/deps/libnever_panics-09df562c3d0fc591.rmeta: crates/am-integration/../../tests/never_panics.rs Cargo.toml

crates/am-integration/../../tests/never_panics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
