/root/repo/target/debug/deps/determinism-8b3ad997b5cebd6b.d: crates/am-integration/../../tests/determinism.rs

/root/repo/target/debug/deps/determinism-8b3ad997b5cebd6b: crates/am-integration/../../tests/determinism.rs

crates/am-integration/../../tests/determinism.rs:
