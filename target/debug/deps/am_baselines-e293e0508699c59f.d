/root/repo/target/debug/deps/am_baselines-e293e0508699c59f.d: crates/am-baselines/src/lib.rs crates/am-baselines/src/bayens.rs crates/am-baselines/src/belikovetsky.rs crates/am-baselines/src/error.rs crates/am-baselines/src/gao.rs crates/am-baselines/src/gatlin.rs crates/am-baselines/src/moore.rs crates/am-baselines/src/run.rs Cargo.toml

/root/repo/target/debug/deps/libam_baselines-e293e0508699c59f.rmeta: crates/am-baselines/src/lib.rs crates/am-baselines/src/bayens.rs crates/am-baselines/src/belikovetsky.rs crates/am-baselines/src/error.rs crates/am-baselines/src/gao.rs crates/am-baselines/src/gatlin.rs crates/am-baselines/src/moore.rs crates/am-baselines/src/run.rs Cargo.toml

crates/am-baselines/src/lib.rs:
crates/am-baselines/src/bayens.rs:
crates/am-baselines/src/belikovetsky.rs:
crates/am-baselines/src/error.rs:
crates/am-baselines/src/gao.rs:
crates/am-baselines/src/gatlin.rs:
crates/am-baselines/src/moore.rs:
crates/am-baselines/src/run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
