/root/repo/target/debug/deps/am_sensors-8f997bd6fc87fd27.d: crates/am-sensors/src/lib.rs crates/am-sensors/src/channel.rs crates/am-sensors/src/daq.rs crates/am-sensors/src/faults.rs crates/am-sensors/src/models/mod.rs crates/am-sensors/src/models/acc.rs crates/am-sensors/src/models/aud.rs crates/am-sensors/src/models/ept.rs crates/am-sensors/src/models/mag.rs crates/am-sensors/src/models/pwr.rs crates/am-sensors/src/models/tmp.rs crates/am-sensors/src/synth.rs Cargo.toml

/root/repo/target/debug/deps/libam_sensors-8f997bd6fc87fd27.rmeta: crates/am-sensors/src/lib.rs crates/am-sensors/src/channel.rs crates/am-sensors/src/daq.rs crates/am-sensors/src/faults.rs crates/am-sensors/src/models/mod.rs crates/am-sensors/src/models/acc.rs crates/am-sensors/src/models/aud.rs crates/am-sensors/src/models/ept.rs crates/am-sensors/src/models/mag.rs crates/am-sensors/src/models/pwr.rs crates/am-sensors/src/models/tmp.rs crates/am-sensors/src/synth.rs Cargo.toml

crates/am-sensors/src/lib.rs:
crates/am-sensors/src/channel.rs:
crates/am-sensors/src/daq.rs:
crates/am-sensors/src/faults.rs:
crates/am-sensors/src/models/mod.rs:
crates/am-sensors/src/models/acc.rs:
crates/am-sensors/src/models/aud.rs:
crates/am-sensors/src/models/ept.rs:
crates/am-sensors/src/models/mag.rs:
crates/am-sensors/src/models/pwr.rs:
crates/am-sensors/src/models/tmp.rs:
crates/am-sensors/src/synth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
