/root/repo/target/debug/deps/am_baselines-d2a0bea92f7181bf.d: crates/am-baselines/src/lib.rs crates/am-baselines/src/bayens.rs crates/am-baselines/src/belikovetsky.rs crates/am-baselines/src/error.rs crates/am-baselines/src/gao.rs crates/am-baselines/src/gatlin.rs crates/am-baselines/src/moore.rs crates/am-baselines/src/run.rs

/root/repo/target/debug/deps/libam_baselines-d2a0bea92f7181bf.rlib: crates/am-baselines/src/lib.rs crates/am-baselines/src/bayens.rs crates/am-baselines/src/belikovetsky.rs crates/am-baselines/src/error.rs crates/am-baselines/src/gao.rs crates/am-baselines/src/gatlin.rs crates/am-baselines/src/moore.rs crates/am-baselines/src/run.rs

/root/repo/target/debug/deps/libam_baselines-d2a0bea92f7181bf.rmeta: crates/am-baselines/src/lib.rs crates/am-baselines/src/bayens.rs crates/am-baselines/src/belikovetsky.rs crates/am-baselines/src/error.rs crates/am-baselines/src/gao.rs crates/am-baselines/src/gatlin.rs crates/am-baselines/src/moore.rs crates/am-baselines/src/run.rs

crates/am-baselines/src/lib.rs:
crates/am-baselines/src/bayens.rs:
crates/am-baselines/src/belikovetsky.rs:
crates/am-baselines/src/error.rs:
crates/am-baselines/src/gao.rs:
crates/am-baselines/src/gatlin.rs:
crates/am-baselines/src/moore.rs:
crates/am-baselines/src/run.rs:
