/root/repo/target/debug/deps/nsync_repro-a5e3f03ca83cae15.d: crates/am-eval/src/bin/nsync-repro.rs Cargo.toml

/root/repo/target/debug/deps/libnsync_repro-a5e3f03ca83cae15.rmeta: crates/am-eval/src/bin/nsync-repro.rs Cargo.toml

crates/am-eval/src/bin/nsync-repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
