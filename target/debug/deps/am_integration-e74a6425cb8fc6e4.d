/root/repo/target/debug/deps/am_integration-e74a6425cb8fc6e4.d: crates/am-integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libam_integration-e74a6425cb8fc6e4.rmeta: crates/am-integration/src/lib.rs Cargo.toml

crates/am-integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
