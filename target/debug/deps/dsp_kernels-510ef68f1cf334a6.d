/root/repo/target/debug/deps/dsp_kernels-510ef68f1cf334a6.d: crates/bench/benches/dsp_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libdsp_kernels-510ef68f1cf334a6.rmeta: crates/bench/benches/dsp_kernels.rs Cargo.toml

crates/bench/benches/dsp_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
