/root/repo/target/debug/deps/fig10_hdisp_consistency-2590b9896d7ff595.d: crates/bench/benches/fig10_hdisp_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_hdisp_consistency-2590b9896d7ff595.rmeta: crates/bench/benches/fig10_hdisp_consistency.rs Cargo.toml

crates/bench/benches/fig10_hdisp_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
