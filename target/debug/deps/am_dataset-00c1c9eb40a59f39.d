/root/repo/target/debug/deps/am_dataset-00c1c9eb40a59f39.d: crates/am-dataset/src/lib.rs crates/am-dataset/src/error.rs crates/am-dataset/src/generate.rs crates/am-dataset/src/spec.rs

/root/repo/target/debug/deps/am_dataset-00c1c9eb40a59f39: crates/am-dataset/src/lib.rs crates/am-dataset/src/error.rs crates/am-dataset/src/generate.rs crates/am-dataset/src/spec.rs

crates/am-dataset/src/lib.rs:
crates/am-dataset/src/error.rs:
crates/am-dataset/src/generate.rs:
crates/am-dataset/src/spec.rs:
