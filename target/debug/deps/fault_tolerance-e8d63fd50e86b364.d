/root/repo/target/debug/deps/fault_tolerance-e8d63fd50e86b364.d: crates/am-integration/../../tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-e8d63fd50e86b364: crates/am-integration/../../tests/fault_tolerance.rs

crates/am-integration/../../tests/fault_tolerance.rs:
