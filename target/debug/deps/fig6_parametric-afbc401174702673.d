/root/repo/target/debug/deps/fig6_parametric-afbc401174702673.d: crates/bench/benches/fig6_parametric.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_parametric-afbc401174702673.rmeta: crates/bench/benches/fig6_parametric.rs Cargo.toml

crates/bench/benches/fig6_parametric.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
