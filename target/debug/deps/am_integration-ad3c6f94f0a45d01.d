/root/repo/target/debug/deps/am_integration-ad3c6f94f0a45d01.d: crates/am-integration/src/lib.rs

/root/repo/target/debug/deps/am_integration-ad3c6f94f0a45d01: crates/am-integration/src/lib.rs

crates/am-integration/src/lib.rs:
