/root/repo/target/debug/deps/bench-b2c840abac3ee47f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-b2c840abac3ee47f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
