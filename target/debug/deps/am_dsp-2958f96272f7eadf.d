/root/repo/target/debug/deps/am_dsp-2958f96272f7eadf.d: crates/am-dsp/src/lib.rs crates/am-dsp/src/error.rs crates/am-dsp/src/fft.rs crates/am-dsp/src/filter.rs crates/am-dsp/src/io.rs crates/am-dsp/src/linalg.rs crates/am-dsp/src/metrics.rs crates/am-dsp/src/pca.rs crates/am-dsp/src/resample.rs crates/am-dsp/src/signal.rs crates/am-dsp/src/stats.rs crates/am-dsp/src/stft.rs crates/am-dsp/src/tde.rs crates/am-dsp/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libam_dsp-2958f96272f7eadf.rmeta: crates/am-dsp/src/lib.rs crates/am-dsp/src/error.rs crates/am-dsp/src/fft.rs crates/am-dsp/src/filter.rs crates/am-dsp/src/io.rs crates/am-dsp/src/linalg.rs crates/am-dsp/src/metrics.rs crates/am-dsp/src/pca.rs crates/am-dsp/src/resample.rs crates/am-dsp/src/signal.rs crates/am-dsp/src/stats.rs crates/am-dsp/src/stft.rs crates/am-dsp/src/tde.rs crates/am-dsp/src/window.rs Cargo.toml

crates/am-dsp/src/lib.rs:
crates/am-dsp/src/error.rs:
crates/am-dsp/src/fft.rs:
crates/am-dsp/src/filter.rs:
crates/am-dsp/src/io.rs:
crates/am-dsp/src/linalg.rs:
crates/am-dsp/src/metrics.rs:
crates/am-dsp/src/pca.rs:
crates/am-dsp/src/resample.rs:
crates/am-dsp/src/signal.rs:
crates/am-dsp/src/stats.rs:
crates/am-dsp/src/stft.rs:
crates/am-dsp/src/tde.rs:
crates/am-dsp/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
