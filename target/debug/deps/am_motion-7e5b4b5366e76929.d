/root/repo/target/debug/deps/am_motion-7e5b4b5366e76929.d: crates/am-motion/src/lib.rs crates/am-motion/src/kinematics.rs crates/am-motion/src/planner.rs crates/am-motion/src/profile.rs crates/am-motion/src/segment.rs crates/am-motion/src/types.rs

/root/repo/target/debug/deps/libam_motion-7e5b4b5366e76929.rlib: crates/am-motion/src/lib.rs crates/am-motion/src/kinematics.rs crates/am-motion/src/planner.rs crates/am-motion/src/profile.rs crates/am-motion/src/segment.rs crates/am-motion/src/types.rs

/root/repo/target/debug/deps/libam_motion-7e5b4b5366e76929.rmeta: crates/am-motion/src/lib.rs crates/am-motion/src/kinematics.rs crates/am-motion/src/planner.rs crates/am-motion/src/profile.rs crates/am-motion/src/segment.rs crates/am-motion/src/types.rs

crates/am-motion/src/lib.rs:
crates/am-motion/src/kinematics.rs:
crates/am-motion/src/planner.rs:
crates/am-motion/src/profile.rs:
crates/am-motion/src/segment.rs:
crates/am-motion/src/types.rs:
