/root/repo/target/debug/deps/am_integration-1c660022d2eea55b.d: crates/am-integration/src/lib.rs

/root/repo/target/debug/deps/libam_integration-1c660022d2eea55b.rlib: crates/am-integration/src/lib.rs

/root/repo/target/debug/deps/libam_integration-1c660022d2eea55b.rmeta: crates/am-integration/src/lib.rs

crates/am-integration/src/lib.rs:
