/root/repo/target/debug/deps/nsync_repro-615afa170782258b.d: crates/am-eval/src/bin/nsync-repro.rs Cargo.toml

/root/repo/target/debug/deps/libnsync_repro-615afa170782258b.rmeta: crates/am-eval/src/bin/nsync-repro.rs Cargo.toml

crates/am-eval/src/bin/nsync-repro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
