/root/repo/target/debug/deps/am_sensors-df0936b074fc8954.d: crates/am-sensors/src/lib.rs crates/am-sensors/src/channel.rs crates/am-sensors/src/daq.rs crates/am-sensors/src/faults.rs crates/am-sensors/src/models/mod.rs crates/am-sensors/src/models/acc.rs crates/am-sensors/src/models/aud.rs crates/am-sensors/src/models/ept.rs crates/am-sensors/src/models/mag.rs crates/am-sensors/src/models/pwr.rs crates/am-sensors/src/models/tmp.rs crates/am-sensors/src/synth.rs

/root/repo/target/debug/deps/am_sensors-df0936b074fc8954: crates/am-sensors/src/lib.rs crates/am-sensors/src/channel.rs crates/am-sensors/src/daq.rs crates/am-sensors/src/faults.rs crates/am-sensors/src/models/mod.rs crates/am-sensors/src/models/acc.rs crates/am-sensors/src/models/aud.rs crates/am-sensors/src/models/ept.rs crates/am-sensors/src/models/mag.rs crates/am-sensors/src/models/pwr.rs crates/am-sensors/src/models/tmp.rs crates/am-sensors/src/synth.rs

crates/am-sensors/src/lib.rs:
crates/am-sensors/src/channel.rs:
crates/am-sensors/src/daq.rs:
crates/am-sensors/src/faults.rs:
crates/am-sensors/src/models/mod.rs:
crates/am-sensors/src/models/acc.rs:
crates/am-sensors/src/models/aud.rs:
crates/am-sensors/src/models/ept.rs:
crates/am-sensors/src/models/mag.rs:
crates/am-sensors/src/models/pwr.rs:
crates/am-sensors/src/models/tmp.rs:
crates/am-sensors/src/synth.rs:
