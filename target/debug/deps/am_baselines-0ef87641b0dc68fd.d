/root/repo/target/debug/deps/am_baselines-0ef87641b0dc68fd.d: crates/am-baselines/src/lib.rs crates/am-baselines/src/bayens.rs crates/am-baselines/src/belikovetsky.rs crates/am-baselines/src/error.rs crates/am-baselines/src/gao.rs crates/am-baselines/src/gatlin.rs crates/am-baselines/src/moore.rs crates/am-baselines/src/run.rs Cargo.toml

/root/repo/target/debug/deps/libam_baselines-0ef87641b0dc68fd.rmeta: crates/am-baselines/src/lib.rs crates/am-baselines/src/bayens.rs crates/am-baselines/src/belikovetsky.rs crates/am-baselines/src/error.rs crates/am-baselines/src/gao.rs crates/am-baselines/src/gatlin.rs crates/am-baselines/src/moore.rs crates/am-baselines/src/run.rs Cargo.toml

crates/am-baselines/src/lib.rs:
crates/am-baselines/src/bayens.rs:
crates/am-baselines/src/belikovetsky.rs:
crates/am-baselines/src/error.rs:
crates/am-baselines/src/gao.rs:
crates/am-baselines/src/gatlin.rs:
crates/am-baselines/src/moore.rs:
crates/am-baselines/src/run.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
