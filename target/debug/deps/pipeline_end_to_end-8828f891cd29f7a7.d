/root/repo/target/debug/deps/pipeline_end_to_end-8828f891cd29f7a7.d: crates/am-integration/../../tests/pipeline_end_to_end.rs

/root/repo/target/debug/deps/pipeline_end_to_end-8828f891cd29f7a7: crates/am-integration/../../tests/pipeline_end_to_end.rs

crates/am-integration/../../tests/pipeline_end_to_end.rs:
