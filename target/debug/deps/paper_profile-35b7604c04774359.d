/root/repo/target/debug/deps/paper_profile-35b7604c04774359.d: crates/am-integration/../../tests/paper_profile.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_profile-35b7604c04774359.rmeta: crates/am-integration/../../tests/paper_profile.rs Cargo.toml

crates/am-integration/../../tests/paper_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
