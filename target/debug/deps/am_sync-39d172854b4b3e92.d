/root/repo/target/debug/deps/am_sync-39d172854b4b3e92.d: crates/am-sync/src/lib.rs crates/am-sync/src/align.rs crates/am-sync/src/autotune.rs crates/am-sync/src/dtw.rs crates/am-sync/src/dwm.rs crates/am-sync/src/error.rs crates/am-sync/src/fastdtw.rs crates/am-sync/src/online_dtw.rs

/root/repo/target/debug/deps/am_sync-39d172854b4b3e92: crates/am-sync/src/lib.rs crates/am-sync/src/align.rs crates/am-sync/src/autotune.rs crates/am-sync/src/dtw.rs crates/am-sync/src/dwm.rs crates/am-sync/src/error.rs crates/am-sync/src/fastdtw.rs crates/am-sync/src/online_dtw.rs

crates/am-sync/src/lib.rs:
crates/am-sync/src/align.rs:
crates/am-sync/src/autotune.rs:
crates/am-sync/src/dtw.rs:
crates/am-sync/src/dwm.rs:
crates/am-sync/src/error.rs:
crates/am-sync/src/fastdtw.rs:
crates/am-sync/src/online_dtw.rs:
