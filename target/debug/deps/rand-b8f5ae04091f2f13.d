/root/repo/target/debug/deps/rand-b8f5ae04091f2f13.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b8f5ae04091f2f13.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-b8f5ae04091f2f13.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
