/root/repo/target/debug/deps/am_dataset-aff3f11a4eb4f656.d: crates/am-dataset/src/lib.rs crates/am-dataset/src/error.rs crates/am-dataset/src/generate.rs crates/am-dataset/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libam_dataset-aff3f11a4eb4f656.rmeta: crates/am-dataset/src/lib.rs crates/am-dataset/src/error.rs crates/am-dataset/src/generate.rs crates/am-dataset/src/spec.rs Cargo.toml

crates/am-dataset/src/lib.rs:
crates/am-dataset/src/error.rs:
crates/am-dataset/src/generate.rs:
crates/am-dataset/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
