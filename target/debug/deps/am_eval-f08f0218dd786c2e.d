/root/repo/target/debug/deps/am_eval-f08f0218dd786c2e.d: crates/am-eval/src/lib.rs crates/am-eval/src/ablations.rs crates/am-eval/src/degradation.rs crates/am-eval/src/figures.rs crates/am-eval/src/harness.rs crates/am-eval/src/metrics.rs crates/am-eval/src/report.rs crates/am-eval/src/tables.rs

/root/repo/target/debug/deps/am_eval-f08f0218dd786c2e: crates/am-eval/src/lib.rs crates/am-eval/src/ablations.rs crates/am-eval/src/degradation.rs crates/am-eval/src/figures.rs crates/am-eval/src/harness.rs crates/am-eval/src/metrics.rs crates/am-eval/src/report.rs crates/am-eval/src/tables.rs

crates/am-eval/src/lib.rs:
crates/am-eval/src/ablations.rs:
crates/am-eval/src/degradation.rs:
crates/am-eval/src/figures.rs:
crates/am-eval/src/harness.rs:
crates/am-eval/src/metrics.rs:
crates/am-eval/src/report.rs:
crates/am-eval/src/tables.rs:
