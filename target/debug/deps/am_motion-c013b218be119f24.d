/root/repo/target/debug/deps/am_motion-c013b218be119f24.d: crates/am-motion/src/lib.rs crates/am-motion/src/kinematics.rs crates/am-motion/src/planner.rs crates/am-motion/src/profile.rs crates/am-motion/src/segment.rs crates/am-motion/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libam_motion-c013b218be119f24.rmeta: crates/am-motion/src/lib.rs crates/am-motion/src/kinematics.rs crates/am-motion/src/planner.rs crates/am-motion/src/profile.rs crates/am-motion/src/segment.rs crates/am-motion/src/types.rs Cargo.toml

crates/am-motion/src/lib.rs:
crates/am-motion/src/kinematics.rs:
crates/am-motion/src/planner.rs:
crates/am-motion/src/profile.rs:
crates/am-motion/src/segment.rs:
crates/am-motion/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
