/root/repo/target/debug/deps/bench-69f4b9ecbbac0793.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-69f4b9ecbbac0793.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-69f4b9ecbbac0793.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
