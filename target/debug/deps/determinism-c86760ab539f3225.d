/root/repo/target/debug/deps/determinism-c86760ab539f3225.d: crates/am-integration/../../tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-c86760ab539f3225.rmeta: crates/am-integration/../../tests/determinism.rs Cargo.toml

crates/am-integration/../../tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
