/root/repo/target/debug/deps/pipeline_end_to_end-5c5ef53c12d5800a.d: crates/am-integration/../../tests/pipeline_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_end_to_end-5c5ef53c12d5800a.rmeta: crates/am-integration/../../tests/pipeline_end_to_end.rs Cargo.toml

crates/am-integration/../../tests/pipeline_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
