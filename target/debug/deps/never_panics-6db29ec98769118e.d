/root/repo/target/debug/deps/never_panics-6db29ec98769118e.d: crates/am-integration/../../tests/never_panics.rs

/root/repo/target/debug/deps/never_panics-6db29ec98769118e: crates/am-integration/../../tests/never_panics.rs

crates/am-integration/../../tests/never_panics.rs:
