/root/repo/target/debug/deps/fig11_sync_throughput-0dbfadafe84b052c.d: crates/bench/benches/fig11_sync_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_sync_throughput-0dbfadafe84b052c.rmeta: crates/bench/benches/fig11_sync_throughput.rs Cargo.toml

crates/bench/benches/fig11_sync_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
