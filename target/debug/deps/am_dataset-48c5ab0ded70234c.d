/root/repo/target/debug/deps/am_dataset-48c5ab0ded70234c.d: crates/am-dataset/src/lib.rs crates/am-dataset/src/error.rs crates/am-dataset/src/generate.rs crates/am-dataset/src/spec.rs

/root/repo/target/debug/deps/libam_dataset-48c5ab0ded70234c.rlib: crates/am-dataset/src/lib.rs crates/am-dataset/src/error.rs crates/am-dataset/src/generate.rs crates/am-dataset/src/spec.rs

/root/repo/target/debug/deps/libam_dataset-48c5ab0ded70234c.rmeta: crates/am-dataset/src/lib.rs crates/am-dataset/src/error.rs crates/am-dataset/src/generate.rs crates/am-dataset/src/spec.rs

crates/am-dataset/src/lib.rs:
crates/am-dataset/src/error.rs:
crates/am-dataset/src/generate.rs:
crates/am-dataset/src/spec.rs:
