/root/repo/target/debug/deps/am_eval-011516d46a759aa7.d: crates/am-eval/src/lib.rs crates/am-eval/src/ablations.rs crates/am-eval/src/degradation.rs crates/am-eval/src/figures.rs crates/am-eval/src/harness.rs crates/am-eval/src/metrics.rs crates/am-eval/src/report.rs crates/am-eval/src/tables.rs

/root/repo/target/debug/deps/libam_eval-011516d46a759aa7.rlib: crates/am-eval/src/lib.rs crates/am-eval/src/ablations.rs crates/am-eval/src/degradation.rs crates/am-eval/src/figures.rs crates/am-eval/src/harness.rs crates/am-eval/src/metrics.rs crates/am-eval/src/report.rs crates/am-eval/src/tables.rs

/root/repo/target/debug/deps/libam_eval-011516d46a759aa7.rmeta: crates/am-eval/src/lib.rs crates/am-eval/src/ablations.rs crates/am-eval/src/degradation.rs crates/am-eval/src/figures.rs crates/am-eval/src/harness.rs crates/am-eval/src/metrics.rs crates/am-eval/src/report.rs crates/am-eval/src/tables.rs

crates/am-eval/src/lib.rs:
crates/am-eval/src/ablations.rs:
crates/am-eval/src/degradation.rs:
crates/am-eval/src/figures.rs:
crates/am-eval/src/harness.rs:
crates/am-eval/src/metrics.rs:
crates/am-eval/src/report.rs:
crates/am-eval/src/tables.rs:
