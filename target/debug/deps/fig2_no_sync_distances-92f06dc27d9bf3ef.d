/root/repo/target/debug/deps/fig2_no_sync_distances-92f06dc27d9bf3ef.d: crates/bench/benches/fig2_no_sync_distances.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_no_sync_distances-92f06dc27d9bf3ef.rmeta: crates/bench/benches/fig2_no_sync_distances.rs Cargo.toml

crates/bench/benches/fig2_no_sync_distances.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
