/root/repo/target/debug/deps/am_dsp-f5f7231117a6a081.d: crates/am-dsp/src/lib.rs crates/am-dsp/src/error.rs crates/am-dsp/src/fft.rs crates/am-dsp/src/filter.rs crates/am-dsp/src/io.rs crates/am-dsp/src/linalg.rs crates/am-dsp/src/metrics.rs crates/am-dsp/src/pca.rs crates/am-dsp/src/resample.rs crates/am-dsp/src/signal.rs crates/am-dsp/src/stats.rs crates/am-dsp/src/stft.rs crates/am-dsp/src/tde.rs crates/am-dsp/src/window.rs

/root/repo/target/debug/deps/libam_dsp-f5f7231117a6a081.rlib: crates/am-dsp/src/lib.rs crates/am-dsp/src/error.rs crates/am-dsp/src/fft.rs crates/am-dsp/src/filter.rs crates/am-dsp/src/io.rs crates/am-dsp/src/linalg.rs crates/am-dsp/src/metrics.rs crates/am-dsp/src/pca.rs crates/am-dsp/src/resample.rs crates/am-dsp/src/signal.rs crates/am-dsp/src/stats.rs crates/am-dsp/src/stft.rs crates/am-dsp/src/tde.rs crates/am-dsp/src/window.rs

/root/repo/target/debug/deps/libam_dsp-f5f7231117a6a081.rmeta: crates/am-dsp/src/lib.rs crates/am-dsp/src/error.rs crates/am-dsp/src/fft.rs crates/am-dsp/src/filter.rs crates/am-dsp/src/io.rs crates/am-dsp/src/linalg.rs crates/am-dsp/src/metrics.rs crates/am-dsp/src/pca.rs crates/am-dsp/src/resample.rs crates/am-dsp/src/signal.rs crates/am-dsp/src/stats.rs crates/am-dsp/src/stft.rs crates/am-dsp/src/tde.rs crates/am-dsp/src/window.rs

crates/am-dsp/src/lib.rs:
crates/am-dsp/src/error.rs:
crates/am-dsp/src/fft.rs:
crates/am-dsp/src/filter.rs:
crates/am-dsp/src/io.rs:
crates/am-dsp/src/linalg.rs:
crates/am-dsp/src/metrics.rs:
crates/am-dsp/src/pca.rs:
crates/am-dsp/src/resample.rs:
crates/am-dsp/src/signal.rs:
crates/am-dsp/src/stats.rs:
crates/am-dsp/src/stft.rs:
crates/am-dsp/src/tde.rs:
crates/am-dsp/src/window.rs:
