/root/repo/target/debug/deps/proptest-34d4f3f42d62687c.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-34d4f3f42d62687c.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
