/root/repo/target/debug/deps/paper_profile-82be29a2d767e6c8.d: crates/am-integration/../../tests/paper_profile.rs

/root/repo/target/debug/deps/paper_profile-82be29a2d767e6c8: crates/am-integration/../../tests/paper_profile.rs

crates/am-integration/../../tests/paper_profile.rs:
