/root/repo/target/debug/deps/cross_part_and_kinematics-1c18d5b76e230776.d: crates/am-integration/../../tests/cross_part_and_kinematics.rs Cargo.toml

/root/repo/target/debug/deps/libcross_part_and_kinematics-1c18d5b76e230776.rmeta: crates/am-integration/../../tests/cross_part_and_kinematics.rs Cargo.toml

crates/am-integration/../../tests/cross_part_and_kinematics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
