/root/repo/target/debug/deps/weak_channels-bcf747644933e18b.d: crates/am-integration/../../tests/weak_channels.rs

/root/repo/target/debug/deps/weak_channels-bcf747644933e18b: crates/am-integration/../../tests/weak_channels.rs

crates/am-integration/../../tests/weak_channels.rs:
