/root/repo/target/debug/deps/am_printer-e124310e922fcb4d.d: crates/am-printer/src/lib.rs crates/am-printer/src/attack.rs crates/am-printer/src/config.rs crates/am-printer/src/error.rs crates/am-printer/src/firmware.rs crates/am-printer/src/noise.rs crates/am-printer/src/thermal.rs crates/am-printer/src/trajectory.rs

/root/repo/target/debug/deps/libam_printer-e124310e922fcb4d.rlib: crates/am-printer/src/lib.rs crates/am-printer/src/attack.rs crates/am-printer/src/config.rs crates/am-printer/src/error.rs crates/am-printer/src/firmware.rs crates/am-printer/src/noise.rs crates/am-printer/src/thermal.rs crates/am-printer/src/trajectory.rs

/root/repo/target/debug/deps/libam_printer-e124310e922fcb4d.rmeta: crates/am-printer/src/lib.rs crates/am-printer/src/attack.rs crates/am-printer/src/config.rs crates/am-printer/src/error.rs crates/am-printer/src/firmware.rs crates/am-printer/src/noise.rs crates/am-printer/src/thermal.rs crates/am-printer/src/trajectory.rs

crates/am-printer/src/lib.rs:
crates/am-printer/src/attack.rs:
crates/am-printer/src/config.rs:
crates/am-printer/src/error.rs:
crates/am-printer/src/firmware.rs:
crates/am-printer/src/noise.rs:
crates/am-printer/src/thermal.rs:
crates/am-printer/src/trajectory.rs:
