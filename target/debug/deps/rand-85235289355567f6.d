/root/repo/target/debug/deps/rand-85235289355567f6.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-85235289355567f6.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
