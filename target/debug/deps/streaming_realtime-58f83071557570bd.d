/root/repo/target/debug/deps/streaming_realtime-58f83071557570bd.d: crates/am-integration/../../tests/streaming_realtime.rs Cargo.toml

/root/repo/target/debug/deps/libstreaming_realtime-58f83071557570bd.rmeta: crates/am-integration/../../tests/streaming_realtime.rs Cargo.toml

crates/am-integration/../../tests/streaming_realtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
