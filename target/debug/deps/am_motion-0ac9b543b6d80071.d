/root/repo/target/debug/deps/am_motion-0ac9b543b6d80071.d: crates/am-motion/src/lib.rs crates/am-motion/src/kinematics.rs crates/am-motion/src/planner.rs crates/am-motion/src/profile.rs crates/am-motion/src/segment.rs crates/am-motion/src/types.rs

/root/repo/target/debug/deps/am_motion-0ac9b543b6d80071: crates/am-motion/src/lib.rs crates/am-motion/src/kinematics.rs crates/am-motion/src/planner.rs crates/am-motion/src/profile.rs crates/am-motion/src/segment.rs crates/am-motion/src/types.rs

crates/am-motion/src/lib.rs:
crates/am-motion/src/kinematics.rs:
crates/am-motion/src/planner.rs:
crates/am-motion/src/profile.rs:
crates/am-motion/src/segment.rs:
crates/am-motion/src/types.rs:
