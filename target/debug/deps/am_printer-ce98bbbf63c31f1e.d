/root/repo/target/debug/deps/am_printer-ce98bbbf63c31f1e.d: crates/am-printer/src/lib.rs crates/am-printer/src/attack.rs crates/am-printer/src/config.rs crates/am-printer/src/error.rs crates/am-printer/src/firmware.rs crates/am-printer/src/noise.rs crates/am-printer/src/thermal.rs crates/am-printer/src/trajectory.rs Cargo.toml

/root/repo/target/debug/deps/libam_printer-ce98bbbf63c31f1e.rmeta: crates/am-printer/src/lib.rs crates/am-printer/src/attack.rs crates/am-printer/src/config.rs crates/am-printer/src/error.rs crates/am-printer/src/firmware.rs crates/am-printer/src/noise.rs crates/am-printer/src/thermal.rs crates/am-printer/src/trajectory.rs Cargo.toml

crates/am-printer/src/lib.rs:
crates/am-printer/src/attack.rs:
crates/am-printer/src/config.rs:
crates/am-printer/src/error.rs:
crates/am-printer/src/firmware.rs:
crates/am-printer/src/noise.rs:
crates/am-printer/src/thermal.rs:
crates/am-printer/src/trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
