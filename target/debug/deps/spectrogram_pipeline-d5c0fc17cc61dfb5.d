/root/repo/target/debug/deps/spectrogram_pipeline-d5c0fc17cc61dfb5.d: crates/am-integration/../../tests/spectrogram_pipeline.rs

/root/repo/target/debug/deps/spectrogram_pipeline-d5c0fc17cc61dfb5: crates/am-integration/../../tests/spectrogram_pipeline.rs

crates/am-integration/../../tests/spectrogram_pipeline.rs:
