/root/repo/target/debug/deps/tables_and_fig12-4733497d7fa0594a.d: crates/bench/benches/tables_and_fig12.rs Cargo.toml

/root/repo/target/debug/deps/libtables_and_fig12-4733497d7fa0594a.rmeta: crates/bench/benches/tables_and_fig12.rs Cargo.toml

crates/bench/benches/tables_and_fig12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
