/root/repo/target/debug/deps/nsync-5c7c112c90744a2b.d: crates/nsync/src/lib.rs crates/nsync/src/comparator.rs crates/nsync/src/discriminator.rs crates/nsync/src/error.rs crates/nsync/src/health.rs crates/nsync/src/ids.rs crates/nsync/src/occ.rs crates/nsync/src/streaming.rs

/root/repo/target/debug/deps/libnsync-5c7c112c90744a2b.rlib: crates/nsync/src/lib.rs crates/nsync/src/comparator.rs crates/nsync/src/discriminator.rs crates/nsync/src/error.rs crates/nsync/src/health.rs crates/nsync/src/ids.rs crates/nsync/src/occ.rs crates/nsync/src/streaming.rs

/root/repo/target/debug/deps/libnsync-5c7c112c90744a2b.rmeta: crates/nsync/src/lib.rs crates/nsync/src/comparator.rs crates/nsync/src/discriminator.rs crates/nsync/src/error.rs crates/nsync/src/health.rs crates/nsync/src/ids.rs crates/nsync/src/occ.rs crates/nsync/src/streaming.rs

crates/nsync/src/lib.rs:
crates/nsync/src/comparator.rs:
crates/nsync/src/discriminator.rs:
crates/nsync/src/error.rs:
crates/nsync/src/health.rs:
crates/nsync/src/ids.rs:
crates/nsync/src/occ.rs:
crates/nsync/src/streaming.rs:
