/root/repo/target/debug/deps/proptest-d9d6aff68aaf4963.d: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-d9d6aff68aaf4963.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs

/root/repo/target/debug/deps/libproptest-d9d6aff68aaf4963.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/collection.rs vendor/proptest/src/strategy.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/strategy.rs:
