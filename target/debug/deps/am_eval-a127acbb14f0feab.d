/root/repo/target/debug/deps/am_eval-a127acbb14f0feab.d: crates/am-eval/src/lib.rs crates/am-eval/src/ablations.rs crates/am-eval/src/degradation.rs crates/am-eval/src/figures.rs crates/am-eval/src/harness.rs crates/am-eval/src/metrics.rs crates/am-eval/src/report.rs crates/am-eval/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libam_eval-a127acbb14f0feab.rmeta: crates/am-eval/src/lib.rs crates/am-eval/src/ablations.rs crates/am-eval/src/degradation.rs crates/am-eval/src/figures.rs crates/am-eval/src/harness.rs crates/am-eval/src/metrics.rs crates/am-eval/src/report.rs crates/am-eval/src/tables.rs Cargo.toml

crates/am-eval/src/lib.rs:
crates/am-eval/src/ablations.rs:
crates/am-eval/src/degradation.rs:
crates/am-eval/src/figures.rs:
crates/am-eval/src/harness.rs:
crates/am-eval/src/metrics.rs:
crates/am-eval/src/report.rs:
crates/am-eval/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
