/root/repo/target/debug/deps/am_printer-387d5775044247c9.d: crates/am-printer/src/lib.rs crates/am-printer/src/attack.rs crates/am-printer/src/config.rs crates/am-printer/src/error.rs crates/am-printer/src/firmware.rs crates/am-printer/src/noise.rs crates/am-printer/src/thermal.rs crates/am-printer/src/trajectory.rs

/root/repo/target/debug/deps/am_printer-387d5775044247c9: crates/am-printer/src/lib.rs crates/am-printer/src/attack.rs crates/am-printer/src/config.rs crates/am-printer/src/error.rs crates/am-printer/src/firmware.rs crates/am-printer/src/noise.rs crates/am-printer/src/thermal.rs crates/am-printer/src/trajectory.rs

crates/am-printer/src/lib.rs:
crates/am-printer/src/attack.rs:
crates/am-printer/src/config.rs:
crates/am-printer/src/error.rs:
crates/am-printer/src/firmware.rs:
crates/am-printer/src/noise.rs:
crates/am-printer/src/thermal.rs:
crates/am-printer/src/trajectory.rs:
