/root/repo/target/debug/deps/am_integration-12ff752aeb9ce2d8.d: crates/am-integration/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libam_integration-12ff752aeb9ce2d8.rmeta: crates/am-integration/src/lib.rs Cargo.toml

crates/am-integration/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
