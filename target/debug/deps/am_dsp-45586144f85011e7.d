/root/repo/target/debug/deps/am_dsp-45586144f85011e7.d: crates/am-dsp/src/lib.rs crates/am-dsp/src/error.rs crates/am-dsp/src/fft.rs crates/am-dsp/src/filter.rs crates/am-dsp/src/io.rs crates/am-dsp/src/linalg.rs crates/am-dsp/src/metrics.rs crates/am-dsp/src/pca.rs crates/am-dsp/src/resample.rs crates/am-dsp/src/signal.rs crates/am-dsp/src/stats.rs crates/am-dsp/src/stft.rs crates/am-dsp/src/tde.rs crates/am-dsp/src/window.rs

/root/repo/target/debug/deps/am_dsp-45586144f85011e7: crates/am-dsp/src/lib.rs crates/am-dsp/src/error.rs crates/am-dsp/src/fft.rs crates/am-dsp/src/filter.rs crates/am-dsp/src/io.rs crates/am-dsp/src/linalg.rs crates/am-dsp/src/metrics.rs crates/am-dsp/src/pca.rs crates/am-dsp/src/resample.rs crates/am-dsp/src/signal.rs crates/am-dsp/src/stats.rs crates/am-dsp/src/stft.rs crates/am-dsp/src/tde.rs crates/am-dsp/src/window.rs

crates/am-dsp/src/lib.rs:
crates/am-dsp/src/error.rs:
crates/am-dsp/src/fft.rs:
crates/am-dsp/src/filter.rs:
crates/am-dsp/src/io.rs:
crates/am-dsp/src/linalg.rs:
crates/am-dsp/src/metrics.rs:
crates/am-dsp/src/pca.rs:
crates/am-dsp/src/resample.rs:
crates/am-dsp/src/signal.rs:
crates/am-dsp/src/stats.rs:
crates/am-dsp/src/stft.rs:
crates/am-dsp/src/tde.rs:
crates/am-dsp/src/window.rs:
