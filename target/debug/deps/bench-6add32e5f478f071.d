/root/repo/target/debug/deps/bench-6add32e5f478f071.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbench-6add32e5f478f071.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
