/root/repo/target/debug/deps/baselines_vs_nsync-d06c3cc7613db62c.d: crates/am-integration/../../tests/baselines_vs_nsync.rs Cargo.toml

/root/repo/target/debug/deps/libbaselines_vs_nsync-d06c3cc7613db62c.rmeta: crates/am-integration/../../tests/baselines_vs_nsync.rs Cargo.toml

crates/am-integration/../../tests/baselines_vs_nsync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
