/root/repo/target/debug/deps/am_sync-b2f16f87b43f8826.d: crates/am-sync/src/lib.rs crates/am-sync/src/align.rs crates/am-sync/src/autotune.rs crates/am-sync/src/dtw.rs crates/am-sync/src/dwm.rs crates/am-sync/src/error.rs crates/am-sync/src/fastdtw.rs crates/am-sync/src/online_dtw.rs

/root/repo/target/debug/deps/libam_sync-b2f16f87b43f8826.rlib: crates/am-sync/src/lib.rs crates/am-sync/src/align.rs crates/am-sync/src/autotune.rs crates/am-sync/src/dtw.rs crates/am-sync/src/dwm.rs crates/am-sync/src/error.rs crates/am-sync/src/fastdtw.rs crates/am-sync/src/online_dtw.rs

/root/repo/target/debug/deps/libam_sync-b2f16f87b43f8826.rmeta: crates/am-sync/src/lib.rs crates/am-sync/src/align.rs crates/am-sync/src/autotune.rs crates/am-sync/src/dtw.rs crates/am-sync/src/dwm.rs crates/am-sync/src/error.rs crates/am-sync/src/fastdtw.rs crates/am-sync/src/online_dtw.rs

crates/am-sync/src/lib.rs:
crates/am-sync/src/align.rs:
crates/am-sync/src/autotune.rs:
crates/am-sync/src/dtw.rs:
crates/am-sync/src/dwm.rs:
crates/am-sync/src/error.rs:
crates/am-sync/src/fastdtw.rs:
crates/am-sync/src/online_dtw.rs:
