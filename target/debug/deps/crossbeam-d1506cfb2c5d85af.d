/root/repo/target/debug/deps/crossbeam-d1506cfb2c5d85af.d: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs vendor/crossbeam/src/thread.rs

/root/repo/target/debug/deps/libcrossbeam-d1506cfb2c5d85af.rmeta: vendor/crossbeam/src/lib.rs vendor/crossbeam/src/channel.rs vendor/crossbeam/src/thread.rs

vendor/crossbeam/src/lib.rs:
vendor/crossbeam/src/channel.rs:
vendor/crossbeam/src/thread.rs:
