/root/repo/target/debug/deps/spectrogram_pipeline-745763a4adba471f.d: crates/am-integration/../../tests/spectrogram_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libspectrogram_pipeline-745763a4adba471f.rmeta: crates/am-integration/../../tests/spectrogram_pipeline.rs Cargo.toml

crates/am-integration/../../tests/spectrogram_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
