/root/repo/target/debug/deps/nsync-74133013d6b91fa7.d: crates/nsync/src/lib.rs crates/nsync/src/comparator.rs crates/nsync/src/discriminator.rs crates/nsync/src/error.rs crates/nsync/src/health.rs crates/nsync/src/ids.rs crates/nsync/src/occ.rs crates/nsync/src/streaming.rs

/root/repo/target/debug/deps/nsync-74133013d6b91fa7: crates/nsync/src/lib.rs crates/nsync/src/comparator.rs crates/nsync/src/discriminator.rs crates/nsync/src/error.rs crates/nsync/src/health.rs crates/nsync/src/ids.rs crates/nsync/src/occ.rs crates/nsync/src/streaming.rs

crates/nsync/src/lib.rs:
crates/nsync/src/comparator.rs:
crates/nsync/src/discriminator.rs:
crates/nsync/src/error.rs:
crates/nsync/src/health.rs:
crates/nsync/src/ids.rs:
crates/nsync/src/occ.rs:
crates/nsync/src/streaming.rs:
