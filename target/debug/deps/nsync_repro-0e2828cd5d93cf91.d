/root/repo/target/debug/deps/nsync_repro-0e2828cd5d93cf91.d: crates/am-eval/src/bin/nsync-repro.rs

/root/repo/target/debug/deps/nsync_repro-0e2828cd5d93cf91: crates/am-eval/src/bin/nsync-repro.rs

crates/am-eval/src/bin/nsync-repro.rs:
