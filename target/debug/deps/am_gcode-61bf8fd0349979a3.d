/root/repo/target/debug/deps/am_gcode-61bf8fd0349979a3.d: crates/am-gcode/src/lib.rs crates/am-gcode/src/attacks.rs crates/am-gcode/src/error.rs crates/am-gcode/src/geometry.rs crates/am-gcode/src/model.rs crates/am-gcode/src/parser.rs crates/am-gcode/src/slicer.rs crates/am-gcode/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libam_gcode-61bf8fd0349979a3.rmeta: crates/am-gcode/src/lib.rs crates/am-gcode/src/attacks.rs crates/am-gcode/src/error.rs crates/am-gcode/src/geometry.rs crates/am-gcode/src/model.rs crates/am-gcode/src/parser.rs crates/am-gcode/src/slicer.rs crates/am-gcode/src/writer.rs Cargo.toml

crates/am-gcode/src/lib.rs:
crates/am-gcode/src/attacks.rs:
crates/am-gcode/src/error.rs:
crates/am-gcode/src/geometry.rs:
crates/am-gcode/src/model.rs:
crates/am-gcode/src/parser.rs:
crates/am-gcode/src/slicer.rs:
crates/am-gcode/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
