/root/repo/target/debug/deps/am_gcode-370375a501806f46.d: crates/am-gcode/src/lib.rs crates/am-gcode/src/attacks.rs crates/am-gcode/src/error.rs crates/am-gcode/src/geometry.rs crates/am-gcode/src/model.rs crates/am-gcode/src/parser.rs crates/am-gcode/src/slicer.rs crates/am-gcode/src/writer.rs

/root/repo/target/debug/deps/libam_gcode-370375a501806f46.rlib: crates/am-gcode/src/lib.rs crates/am-gcode/src/attacks.rs crates/am-gcode/src/error.rs crates/am-gcode/src/geometry.rs crates/am-gcode/src/model.rs crates/am-gcode/src/parser.rs crates/am-gcode/src/slicer.rs crates/am-gcode/src/writer.rs

/root/repo/target/debug/deps/libam_gcode-370375a501806f46.rmeta: crates/am-gcode/src/lib.rs crates/am-gcode/src/attacks.rs crates/am-gcode/src/error.rs crates/am-gcode/src/geometry.rs crates/am-gcode/src/model.rs crates/am-gcode/src/parser.rs crates/am-gcode/src/slicer.rs crates/am-gcode/src/writer.rs

crates/am-gcode/src/lib.rs:
crates/am-gcode/src/attacks.rs:
crates/am-gcode/src/error.rs:
crates/am-gcode/src/geometry.rs:
crates/am-gcode/src/model.rs:
crates/am-gcode/src/parser.rs:
crates/am-gcode/src/slicer.rs:
crates/am-gcode/src/writer.rs:
