/root/repo/target/debug/deps/streaming_realtime-3940070a33892ef2.d: crates/am-integration/../../tests/streaming_realtime.rs

/root/repo/target/debug/deps/streaming_realtime-3940070a33892ef2: crates/am-integration/../../tests/streaming_realtime.rs

crates/am-integration/../../tests/streaming_realtime.rs:
