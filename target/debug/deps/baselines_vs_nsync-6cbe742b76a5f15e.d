/root/repo/target/debug/deps/baselines_vs_nsync-6cbe742b76a5f15e.d: crates/am-integration/../../tests/baselines_vs_nsync.rs

/root/repo/target/debug/deps/baselines_vs_nsync-6cbe742b76a5f15e: crates/am-integration/../../tests/baselines_vs_nsync.rs

crates/am-integration/../../tests/baselines_vs_nsync.rs:
