/root/repo/target/debug/deps/weak_channels-c2b33476c7ed327d.d: crates/am-integration/../../tests/weak_channels.rs Cargo.toml

/root/repo/target/debug/deps/libweak_channels-c2b33476c7ed327d.rmeta: crates/am-integration/../../tests/weak_channels.rs Cargo.toml

crates/am-integration/../../tests/weak_channels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
