/root/repo/target/debug/deps/am_baselines-676e0469b8822064.d: crates/am-baselines/src/lib.rs crates/am-baselines/src/bayens.rs crates/am-baselines/src/belikovetsky.rs crates/am-baselines/src/error.rs crates/am-baselines/src/gao.rs crates/am-baselines/src/gatlin.rs crates/am-baselines/src/moore.rs crates/am-baselines/src/run.rs

/root/repo/target/debug/deps/am_baselines-676e0469b8822064: crates/am-baselines/src/lib.rs crates/am-baselines/src/bayens.rs crates/am-baselines/src/belikovetsky.rs crates/am-baselines/src/error.rs crates/am-baselines/src/gao.rs crates/am-baselines/src/gatlin.rs crates/am-baselines/src/moore.rs crates/am-baselines/src/run.rs

crates/am-baselines/src/lib.rs:
crates/am-baselines/src/bayens.rs:
crates/am-baselines/src/belikovetsky.rs:
crates/am-baselines/src/error.rs:
crates/am-baselines/src/gao.rs:
crates/am-baselines/src/gatlin.rs:
crates/am-baselines/src/moore.rs:
crates/am-baselines/src/run.rs:
